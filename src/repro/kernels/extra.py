"""Additional workload models beyond the paper's evaluation set.

The paper's suite spans four of the five intensity classes (no M_C
representative among the real benchmarks).  These three kernels — modelled
on common Rodinia workloads — fill out the space for trace studies,
cluster placement, and policy exploration:

* **HotSpot (HS)** — 2D thermal stencil: medium compute, medium-high
  memory with strongly order-sensitive halo reuse (a second GS-like
  kernel, but 2D-grid).
* **PathFinder (PF)** — dynamic programming over rows: short dependent
  kernels, latency-bound, low intensity (an RG-like co-run rider).
* **KMeans (KM)** — distance computation: genuinely compute-forward with
  moderate streaming traffic; lands in M_C, the class the paper's suite
  leaves empty.
"""

from __future__ import annotations

from repro.gpu.cache import LocalityModel
from repro.gpu.occupancy import BlockResources
from repro.kernels.kernel import GridDim, KernelSpec

__all__ = ["hotspot", "pathfinder", "kmeans"]


def hotspot(tiles: int = 480, reps: int = 20) -> KernelSpec:
    """HotSpot-style 2D stencil (``tiles`` x ``tiles`` block grid)."""
    return KernelSpec(
        name="HS",
        grid=GridDim(tiles, tiles),
        block=BlockResources(
            threads_per_block=256, registers_per_thread=28, shared_mem_per_block=9 * 1024
        ),
        flops_per_block=9_000.0,
        bytes_per_block=4_200.0,
        # Halo rows shared between vertically-adjacent tiles: reuse is
        # strong but only materializes when neighbours run close in time.
        locality=LocalityModel(reuse_fraction=0.35, order_sensitivity=0.85, footprint=2e6),
        dram_efficiency=0.52,
        min_block_time=2.4e-6,
        time_cv=0.04,
        instr_per_block=1_400.0,
        ldst_per_block=380.0,
        default_reps=reps,
        device_footprint=2 * 8192 * 8192 * 4,
        h2d_bytes=2 * 2048 * 2048 * 4,
        d2h_bytes=2048 * 2048 * 4,
    )


def pathfinder(num_blocks: int = 26_000, reps: int = 22) -> KernelSpec:
    """PathFinder-style row-relaxation kernel (latency-bound, low rates)."""
    return KernelSpec(
        name="PF",
        grid=GridDim(num_blocks),
        block=BlockResources(threads_per_block=256, registers_per_thread=24),
        flops_per_block=450.0,
        bytes_per_block=3_100.0,
        locality=LocalityModel(reuse_fraction=0.10, order_sensitivity=0.5, footprint=0.8e6),
        dram_efficiency=0.9,
        # Wavefront dependencies keep warps waiting.
        min_block_time=24e-6,
        time_cv=0.03,
        instr_per_block=520.0,
        ldst_per_block=130.0,
        default_reps=reps,
        device_footprint=3 * 16_000_000 * 4,
        h2d_bytes=16_000_000 * 4,
        d2h_bytes=100_000 * 4,
    )


def kmeans(num_blocks: int = 168_000, reps: int = 18) -> KernelSpec:
    """KMeans distance kernel: the suite's M_C (medium-compute) member."""
    return KernelSpec(
        name="KM",
        grid=GridDim(num_blocks),
        block=BlockResources(threads_per_block=128, registers_per_thread=36),
        # Distance evaluations against an L2-resident centroid table.
        flops_per_block=9_000.0,
        bytes_per_block=1_500.0,
        # Centroid table fits L2 and is reused by every block regardless
        # of order.
        locality=LocalityModel(reuse_fraction=0.30, order_sensitivity=0.05, footprint=0.5e6),
        dram_efficiency=0.95,
        min_block_time=5.4e-6,
        time_cv=0.05,
        instr_per_block=1_400.0,
        ldst_per_block=220.0,
        default_reps=reps,
        device_footprint=2 * 40_000_000 * 4,
        h2d_bytes=40_000_000 * 4,
        d2h_bytes=1_000_000 * 4,
    )
