"""Shape tests for the extension experiments (fig3/fig4/tab5/scaling/cluster)."""

import pytest

from repro.experiments import (
    cluster_study,
    fig3_transform,
    fig4_decisions,
    scaling,
    tab5_operations,
)


class TestFig3:
    def test_isomorphism_for_various_shapes(self):
        for gx, gy, s, w in [(6, 4, 5, 3), (7, 3, 4, 2), (12, 1, 10, 5)]:
            result = fig3_transform.run(gx, gy, s, w)
            assert result.is_isomorphic, (gx, gy, s, w)

    def test_format_shows_grid_and_workers(self):
        out = fig3_transform.format_result(fig3_transform.run())
        assert "isomorphic: True" in out
        assert "worker 0" in out


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_decisions.run()

    def test_both_branches_taken(self, result):
        assert result.count("corun") >= 5
        assert result.count("solo") >= 2

    def test_memory_pairs_never_corun(self, result):
        for classes in result.corun_partners():
            assert not {"M_M", "H_M"} <= set(classes)

    def test_format(self, result):
        out = fig4_decisions.format_result(result)
        assert "branch (a)" in out and "branch (b)" in out


class TestTab5:
    @pytest.fixture(scope="class")
    def result(self):
        return tab5_operations.run()

    def test_five_rows_matching_paper_table(self, result):
        assert len(result.rows) == 5
        scopes = {r.scope for r in result.rows}
        assert scopes == {"inside kernel exec", "outside kernel exec", "offline"}

    def test_quantified_fractions(self, result):
        assert result.injected_instruction_frac == pytest.approx(0.03, abs=0.01)
        assert 0.01 <= result.comm_frac <= 0.08
        assert 0.005 <= result.compile_frac <= 0.03

    def test_format(self, result):
        assert "Table V" in tab5_operations.format_result(result)


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return scaling.run()

    def test_gain_monotone_until_reclassification(self, result):
        assert result.point(20).gain > result.point(30).gain > result.point(45).gain

    def test_policy_break_and_fix(self, result):
        broken = result.point(60)
        assert not broken.corun and broken.rider_class == "M_M"
        assert broken.gain < 0 < broken.gain_per_sm

    def test_bases_agree_on_calibration_size(self, result):
        p30 = result.point(30)
        assert p30.gain == p30.gain_per_sm

    def test_format(self, result):
        assert "per-SM" in scaling.format_result(result)


class TestClusterStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return cluster_study.run()

    def test_class_aware_separates_and_wins(self, result):
        ca = result.outcome("class-aware")
        rr = result.outcome("round-robin")
        assert ca.hogs_separated and not rr.hogs_separated
        assert ca.makespan < rr.makespan
        assert ca.total_coruns > rr.total_coruns

    def test_format(self, result):
        out = cluster_study.format_result(result)
        assert "class-aware" in out and "GPU 0" in out
