"""Runner registry tests."""

import pytest

from repro.experiments import runner


class TestRegistry:
    def test_keys_unique(self):
        keys = [e.key for e in runner.EXPERIMENTS]
        assert len(keys) == len(set(keys))

    def test_every_paper_artifact_registered(self):
        keys = {e.key for e in runner.EXPERIMENTS}
        for required in (
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "tab1",
            "tab2",
            "tab3",
            "tab4",
            "tab5",
        ):
            assert required in keys, required

    def test_extensions_registered(self):
        keys = {e.key for e in runner.EXPERIMENTS}
        for extension in (
            "abl-policy",
            "abl-partition",
            "abl-locality",
            "abl-resizing",
            "abl-tasksize",
            "validate",
            "sweep",
            "scaling",
            "cluster",
            "gen",
        ):
            assert extension in keys, extension

    def test_entries_are_runnable_pairs(self):
        for experiment in runner.EXPERIMENTS:
            assert callable(experiment.run)
            assert callable(experiment.format)
            assert experiment.title

    def test_run_all_filters_by_key(self):
        results = runner.run_all(["fig3"])
        assert set(results) == {"fig3"}
        assert results["fig3"].is_isomorphic

    def test_main_prints_selected(self, capsys):
        assert runner.main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 1" not in out
