"""Runner registry tests."""

import pytest

from repro.experiments import runner


class TestRegistry:
    def test_keys_unique(self):
        keys = [e.key for e in runner.EXPERIMENTS]
        assert len(keys) == len(set(keys))

    def test_every_paper_artifact_registered(self):
        keys = {e.key for e in runner.EXPERIMENTS}
        for required in (
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "tab1",
            "tab2",
            "tab3",
            "tab4",
            "tab5",
        ):
            assert required in keys, required

    def test_extensions_registered(self):
        keys = {e.key for e in runner.EXPERIMENTS}
        for extension in (
            "abl-policy",
            "abl-partition",
            "abl-locality",
            "abl-resizing",
            "abl-tasksize",
            "validate",
            "sweep",
            "scaling",
            "cluster",
            "gen",
        ):
            assert extension in keys, extension

    def test_entries_are_runnable_pairs(self):
        for experiment in runner.EXPERIMENTS:
            assert callable(experiment.run)
            assert callable(experiment.format)
            assert experiment.title

    def test_run_all_filters_by_key(self):
        results = runner.run_all(["fig3"])
        assert set(results) == {"fig3"}
        assert results["fig3"].is_isomorphic

    def test_main_prints_selected(self, capsys):
        assert runner.main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 1" not in out


class TestUnknownKeys:
    def test_run_all_rejects_unknown_key(self):
        with pytest.raises(runner.UnknownExperimentError) as exc_info:
            runner.run_all(["tab9"])
        message = str(exc_info.value)
        assert "tab9" in message
        for valid in ("fig1", "tab5", "sweep", "gen"):
            assert valid in message

    def test_run_all_rejects_mixed_known_and_unknown(self):
        with pytest.raises(runner.UnknownExperimentError, match="tab9"):
            runner.run_all(["fig3", "tab9"])

    def test_main_unknown_key_errors_with_listing(self, capsys):
        assert runner.main(["tab9"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment key 'tab9'" in captured.err
        assert "fig1" in captured.err  # lists the valid keys
        assert captured.out == ""  # nothing half-printed

    def test_unknown_experiment_error_is_a_value_error(self):
        assert issubclass(runner.UnknownExperimentError, ValueError)


class TestBattery:
    def test_run_battery_reports_timing_in_order(self):
        runs = runner.run_battery(["fig3", "fig1"], jobs=1)
        assert [r.key for r in runs] == ["fig1", "fig3"]  # battery order
        for run in runs:
            assert run.elapsed >= 0.0
            assert run.title
            assert run.formatted == [
                e for e in runner.EXPERIMENTS if e.key == run.key
            ][0].format(run.result)

    def test_run_all_jobs_matches_serial(self):
        serial = runner.run_all(["fig1", "fig3"], jobs=1)
        parallel = runner.run_all(["fig1", "fig3"], jobs=2)
        assert list(serial) == list(parallel)
        for key in serial:
            experiment = [e for e in runner.EXPERIMENTS if e.key == key][0]
            assert experiment.format(serial[key]) == experiment.format(parallel[key])

    def test_main_jobs_flag(self, capsys):
        assert runner.main(["fig3", "fig1", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 3" in out
        assert out.index("Figure 1") < out.index("Figure 3")
        assert "jobs=2" in out

    def test_main_prints_per_experiment_timing(self, capsys):
        assert runner.main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "[" in out and "s]" in out  # "...  [0.01s]" in the header


class TestProfile:
    def test_run_battery_without_profile_has_no_stats(self):
        (run,) = runner.run_battery(["fig3"], jobs=1)
        assert run.stats is None

    def test_run_battery_profile_attaches_engine_counters(self):
        (run,) = runner.run_battery(["fig1"], jobs=1, profile=True)
        assert run.stats is not None
        # fig1 has no result cache, so it always simulates: the engine
        # counters are non-trivial and the incremental recompute engages.
        assert run.stats["events_processed"] > 0
        assert run.stats["rate_recomputes"] > 0

    def test_profile_counters_isolated_per_experiment(self):
        runs = runner.run_battery(["fig1", "tab3"], jobs=1, profile=True)
        by_key = {r.key: r.stats for r in runs}
        # tab3 is far smaller than fig1; bleed-through would equalize them.
        assert by_key["tab3"]["events_processed"] < by_key["fig1"]["events_processed"]

    def test_profile_works_across_pool_workers(self):
        serial = runner.run_battery(["fig1", "fig3"], jobs=1, profile=True)
        parallel = runner.run_battery(["fig1", "fig3"], jobs=2, profile=True)
        assert [r.stats for r in parallel] == [r.stats for r in serial]

    def test_profiled_battery_folds_into_parent_aggregate(self):
        """The parent's process-wide aggregate reflects the whole battery —
        also under --jobs, where the engine work happened in pool workers."""
        from repro.sim import aggregate_stats, reset_aggregate_stats

        reset_aggregate_stats()
        serial = runner.run_battery(["fig1", "fig3"], jobs=1, profile=True)
        serial_agg = aggregate_stats().snapshot()
        expected = sum(r.stats["events_processed"] for r in serial)
        assert serial_agg["events_processed"] == expected

        reset_aggregate_stats()
        runner.run_battery(["fig1", "fig3"], jobs=2, profile=True)
        parallel_agg = aggregate_stats().snapshot()
        assert parallel_agg == serial_agg

    def test_profiled_run_does_not_inherit_prior_aggregate(self):
        """A stale parent accumulator must not bleed into profiled stats
        (the fork-inheritance double count)."""
        from repro.sim import aggregate_stats, reset_aggregate_stats

        baseline = runner.run_battery(["fig1", "fig3"], jobs=1, profile=True)
        # Poison the parent aggregate, then profile in forked workers.
        aggregate_stats().events_processed += 10_000_000
        forked = runner.run_battery(["fig1", "fig3"], jobs=2, profile=True)
        assert [r.stats for r in forked] == [r.stats for r in baseline]
        reset_aggregate_stats()

    def test_format_profile_table_shape(self):
        runs = runner.run_battery(["fig1", "fig3"], jobs=1, profile=True)
        table = runner.format_profile_table(runs)
        lines = table.splitlines()
        assert lines[0].startswith("experiment")
        assert any(line.startswith("fig1") for line in lines)
        assert lines[-1].startswith("total")

    def test_profile_table_epoch_columns(self):
        """The decision-epoch and vectorization counters are tabulated."""
        runs = runner.run_battery(["fig4"], jobs=1, profile=True)
        table = runner.format_profile_table(runs)
        header = table.splitlines()[0]
        for column in ("epochs", "mut/ep", "vec", "scal", "vw"):
            assert column in header
        stats = runs[0].stats
        for field in (
            "epoch_marks",
            "epoch_flushes",
            "rate_vector_evals",
            "rate_scalar_evals",
            "rate_vector_batch",
        ):
            assert field in stats
        # fig4 runs a fresh multi-tenant simulation: mutations were
        # actually batched into epochs, and the table shows the factor.
        assert stats["epoch_flushes"] > 0
        assert stats["epoch_marks"] >= stats["epoch_flushes"]

    def test_epoch_counters_reach_metrics_registry(self):
        """obs registry 'engine' source carries the epoch/vector fields."""
        from repro.obs.registry import registry

        snapshot = registry().snapshot()["sources"]["engine"]
        for field in (
            "epoch_marks",
            "epoch_flushes",
            "rate_vector_evals",
            "rate_scalar_evals",
            "rate_vector_batch",
        ):
            assert field in snapshot

    def test_main_profile_flag_prints_table(self, capsys):
        assert runner.main(["fig3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Engine profile (per experiment):" in out
        assert "experiment" in out and "recomp" in out
