"""Golden-result regression suite.

Every experiment's ``format()`` output is diffed against the checked-in
artifact under ``benchmarks/results/`` — the tables the benchmark harness
regenerates.  This pins the *numbers*, byte for byte: the parallel runner,
the profile/result caches, and any engine refactor must all leave every
emitted digit untouched, or these tests name the experiment that moved.
"""

from pathlib import Path

import pytest

from repro.experiments import runner

RESULTS_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

#: experiment key -> golden file stem under benchmarks/results/.
GOLDEN_FILES = {
    "fig1": "fig1_stream",
    "tab1": "tab1_policy",
    "fig3": "fig3_transform",
    "fig4": "fig4_decisions",
    "tab2": "tab2_profiles",
    "tab3": "tab3_gaussian",
    "tab4": "tab4_bsrg",
    "tab5": "tab5_operations",
    "fig5": "fig5_tasksize",
    "fig6": "fig6_overhead",
    "fig7": "fig7_pairings",
    "abl-policy": "ablation_policy",
    "abl-partition": "ablation_partition",
    "abl-locality": "ablation_locality",
    "abl-tasksize": "ablation_task_size",
    "abl-resizing": "ablation_resizing",
    "validate": "model_validation",
    "sweep": "partition_sweep",
    "scaling": "scaling",
    "cluster": "cluster_study",
    "gen": "generalization",
    "shootout": "policy_shootout",
    "retreat": "retreat_vs_slice",
}

_EXPERIMENTS = {e.key: e for e in runner.EXPERIMENTS}


def golden_text(key: str) -> str:
    return (RESULTS_DIR / f"{GOLDEN_FILES[key]}.txt").read_text()


def test_every_experiment_has_a_golden_file():
    assert set(GOLDEN_FILES) == set(runner.experiment_keys())
    missing = [k for k, stem in GOLDEN_FILES.items()
               if not (RESULTS_DIR / f"{stem}.txt").is_file()]
    assert not missing, f"golden files missing for {missing}"


@pytest.mark.parametrize("key", sorted(GOLDEN_FILES))
def test_format_output_matches_golden(key):
    experiment = _EXPERIMENTS[key]
    formatted = experiment.format(experiment.run())
    assert formatted + "\n" == golden_text(key), (
        f"{key} drifted from benchmarks/results/{GOLDEN_FILES[key]}.txt — "
        "if the change is intentional, regenerate via "
        "`pytest benchmarks/ --benchmark-only`"
    )


def test_parallel_runner_matches_golden():
    """jobs>1 must produce byte-identical output to the golden artifacts."""
    keys = ["fig1", "tab2", "fig5", "sweep"]
    runs = runner.run_battery(keys, jobs=2)
    assert [r.key for r in runs] == keys  # deterministic battery order
    for run in runs:
        assert run.formatted + "\n" == golden_text(run.key)
