"""Tests for the extension experiments: ablations and generalization."""

import pytest

from repro.experiments import ablations, generalization


class TestAblations:
    @pytest.fixture(scope="class")
    def policy(self):
        return ablations.run_policy_ablation()

    @pytest.fixture(scope="class")
    def partition(self):
        return ablations.run_partition_ablation()

    def test_table1_beats_blind_variants(self, policy):
        assert policy.average("table1") < policy.average("always")
        assert policy.average("table1") < policy.average("never")

    def test_always_corun_hurts_memory_pairs(self, policy):
        for pair in ("GS-GS", "TR-TR", "MM-MM"):
            assert policy.rows[pair]["always"] > policy.rows[pair]["table1"]

    def test_never_corun_forfeits_rg_wins(self, policy):
        for pair in ("BS-RG", "GS-RG", "MM-RG"):
            assert policy.rows[pair]["never"] > policy.rows[pair]["table1"]

    def test_heuristic_partition_best_on_average(self, partition):
        assert partition.average("heuristic") <= partition.average("predictive") + 1e-9
        assert partition.average("heuristic") < partition.average("even")

    def test_locality_ablation_isolates_table3(self):
        result = ablations.run_locality_ablation()
        assert 1.15 <= result.speedup_from_ordering <= 1.45

    def test_resizing_helps(self):
        result = ablations.run_resizing_ablation()
        assert result.average("grow") < result.average("no_grow")

    def test_formatters(self, policy, partition):
        assert "Table I" in ablations.format_policy_ablation(policy)
        assert "heuristic" in ablations.format_partition_ablation(partition)


class TestGeneralization:
    @pytest.fixture(scope="class")
    def result(self):
        return generalization.run()

    def test_both_devices_present(self, result):
        assert set(result.tables) == {"Titan Xp", "Tesla V100"}

    def test_gains_persist_on_v100(self, result):
        """Slate's mechanism is not Titan-Xp-specific."""
        assert result.average_gain("Tesla V100") > 0.08
        assert result.gain("Tesla V100", "BS-RG") > 0.15
        assert result.gain("Tesla V100", "GS-RG") > 0.15

    def test_titan_matches_fig7(self, result):
        assert result.gain("Titan Xp", "BS-RG") == pytest.approx(0.27, abs=0.06)

    def test_format(self, result):
        out = generalization.format_result(result)
        assert "Tesla V100" in out and "Titan Xp" in out
