"""Shape tests for every reproduced table and figure.

These assert the paper's qualitative results — who wins, by roughly what
factor, where crossovers fall — on the full experiment pipeline.
"""

import pytest

from repro.experiments import (
    fig1_stream,
    fig5_tasksize,
    fig6_overhead,
    fig7_pairings,
    tab1_policy,
    tab2_profiles,
    tab3_gaussian,
    tab4_bsrg,
)


@pytest.fixture(scope="module")
def fig1():
    return fig1_stream.run(sm_counts=(1, 2, 4, 6, 8, 9, 10, 12, 20, 30))


@pytest.fixture(scope="module")
def tab2():
    return tab2_profiles.run()


@pytest.fixture(scope="module")
def tab3():
    return tab3_gaussian.run()


@pytest.fixture(scope="module")
def tab4():
    return tab4_bsrg.run()


@pytest.fixture(scope="module")
def fig5():
    return fig5_tasksize.run()


@pytest.fixture(scope="module")
def fig6():
    return fig6_overhead.run()


@pytest.fixture(scope="module")
def fig7():
    return fig7_pairings.run()


class TestFig1:
    def test_knee_at_nine_sms(self, fig1):
        assert fig1_stream.knee_point(fig1) == 9

    def test_linear_rise_then_flat(self, fig1):
        assert fig1.bandwidth(2) == pytest.approx(2 * fig1.bandwidth(1), rel=0.05)
        assert fig1.bandwidth(12) == pytest.approx(fig1.bandwidth(30), rel=0.03)

    def test_plateau_near_peak(self, fig1):
        assert fig1.plateau > 0.9 * fig1.device.dram_bandwidth

    def test_format(self, fig1):
        out = fig1_stream.format_result(fig1)
        assert "knee" in out and "GB/s" in out


class TestTab1:
    @pytest.fixture(scope="class")
    def tab1(self):
        return tab1_policy.run()

    def test_load_bearing_cells_agree(self, tab1):
        assert tab1.agreement_on(tab1_policy.LOAD_BEARING_CELLS) == 1.0

    def test_overall_agreement_strong(self, tab1):
        assert tab1.agreement() >= 0.75

    def test_representatives_realize_their_classes(self, tab1):
        for intended, realized in tab1.realized_classes.items():
            assert intended is realized

    def test_format(self, tab1):
        out = tab1_policy.format_result(tab1)
        assert "agreement" in out


class TestTab2:
    @pytest.mark.parametrize("name", list(tab2_profiles.PAPER_TABLE_II))
    def test_rates_within_ten_percent(self, tab2, name):
        row = tab2.row(name)
        _, _, gflops, bw = tab2_profiles.PAPER_TABLE_II[name]
        if gflops:
            assert row.gflops == pytest.approx(gflops, rel=0.10)
        assert row.mem_bw_gbps == pytest.approx(bw, rel=0.10)

    @pytest.mark.parametrize("name", list(tab2_profiles.PAPER_TABLE_II))
    def test_intensity_levels_match(self, tab2, name):
        row = tab2.row(name)
        compute, memory, _, _ = tab2_profiles.PAPER_TABLE_II[name]
        assert row.compute_level == compute
        assert row.memory_level == memory

    def test_format(self, tab2):
        assert "Table II" in tab2_profiles.format_result(tab2)


class TestTab3:
    def test_speedup_matches_paper(self, tab3):
        assert 1.15 <= tab3.speedup <= 1.45  # paper +28%

    def test_bandwidth_gain(self, tab3):
        assert 1.2 <= tab3.bw_gain <= 1.5  # paper +38%

    def test_ipc_improves(self, tab3):
        gain = tab3.ipc_slate / tab3.ipc_cuda
        assert 1.2 <= gain <= 1.5  # paper +30%

    def test_throttle_vanishes(self, tab3):
        assert tab3.cuda.mem_throttle_fraction > 0.08
        assert tab3.slate.mem_throttle_fraction == pytest.approx(0.0, abs=1e-9)

    def test_format(self, tab3):
        assert "Gaussian" in tab3_gaussian.format_result(tab3)


class TestTab4:
    def test_throughput_gain_near_thirty_percent(self, tab4):
        assert 0.20 <= tab4.throughput_gain <= 0.40  # paper 30.55%

    def test_l2_throughput_rises(self, tab4):
        assert tab4.slate.l2_throughput() > tab4.mps.l2_throughput()

    def test_ldst_drops(self, tab4):
        ratio = tab4.slate.ldst / tab4.mps.ldst
        assert 0.88 <= ratio <= 0.97  # paper -9%

    def test_ipc_rises_substantially(self, tab4):
        gain = tab4.slate.ipc(tab4.device) / tab4.mps.ipc(tab4.device)
        assert gain > 1.2  # paper +71%

    def test_format(self, tab4):
        assert "BS-RG" in tab4_bsrg.format_result(tab4)


class TestFig5:
    def test_gs_roughly_halves_by_task_ten(self, fig5):
        norm = fig5.normalized("GS")
        assert norm[10] < 0.6  # "almost halves"

    def test_gs_monotone_improvement(self, fig5):
        norm = fig5.normalized("GS")
        assert norm[1] > norm[2] > norm[5] > norm[10]

    def test_bs_prefers_task_one(self, fig5):
        norm = fig5.normalized("BS")
        assert norm[10] > norm[1]
        assert min(norm, key=norm.get) == 1

    def test_format(self, fig5):
        assert "task size" in fig5_tasksize.format_result(fig5)


class TestFig6:
    def test_mps_app_time_slightly_larger_than_cuda(self, fig6):
        for bench in ("BS", "GS", "MM", "RG", "TR"):
            cuda = fig6.bar(bench, "CUDA").app_time
            mps = fig6.bar(bench, "MPS").app_time
            assert cuda < mps < cuda * 1.1

    def test_gs_best_case_gain(self, fig6):
        cuda = fig6.bar("GS", "CUDA").app_time
        slate = fig6.bar("GS", "Slate").app_time
        assert 1.10 <= cuda / slate <= 1.40  # paper: 28%

    def test_worst_case_near_parity(self, fig6):
        """Paper: 'In the worst case, Slate has the same application
        execution time as CUDA.'"""
        for bench in ("BS", "MM", "RG", "TR"):
            cuda = fig6.bar(bench, "CUDA").app_time
            slate = fig6.bar(bench, "Slate").app_time
            assert slate < cuda * 1.06

    def test_slate_overhead_fractions(self, fig6):
        assert 0.01 <= fig6.average_comm_fraction() <= 0.08  # paper ~4%
        assert 0.003 <= fig6.average_compile_fraction() <= 0.03  # paper ~1.5%

    def test_kernel_time_below_app_time(self, fig6):
        for b in fig6.bars:
            assert 0 < b.kernel_time < b.app_time

    def test_format(self, fig6):
        assert "Figure 6" in fig6_overhead.format_result(fig6)


class TestFig7:
    def test_slate_beats_cuda_on_every_pairing(self, fig7):
        assert fig7.wins("CUDA") == 15

    def test_slate_beats_mps_on_most_pairings(self, fig7):
        assert fig7.wins("MPS") >= 9  # paper: 14/15; our losses are <3% each

    def test_mm_bs_is_a_small_loss(self, fig7):
        """The paper's one exception: MM-BS about -2% vs MPS."""
        row = fig7.row("MM", "BS")
        assert -0.05 <= row.gain("MPS") <= 0.01

    def test_average_gains(self, fig7):
        assert 0.06 <= fig7.average_gain("MPS") <= 0.15  # paper 11%
        assert 0.09 <= fig7.average_gain("CUDA") <= 0.22  # paper 18%

    def test_best_pair_involves_rg(self, fig7):
        best = fig7.best_pair("MPS")
        assert "RG" in best.pair
        assert 0.25 <= best.gain("MPS") <= 0.40  # paper: 35% (RG-GS)

    def test_gs_gs_gains_from_scheduling_alone(self, fig7):
        """Paper: GS-GS gains 24% with consecutive solo runs."""
        row = fig7.row("GS", "GS")
        assert 0.15 <= row.gain("MPS") <= 0.30

    def test_mps_beats_cuda_overall(self, fig7):
        mps_avg = sum(r.antt_by_runtime["MPS"] for r in fig7.rows) / 15
        cuda_avg = sum(r.antt_by_runtime["CUDA"] for r in fig7.rows) / 15
        assert 0.90 <= mps_avg / cuda_avg <= 0.99  # paper: ~6% better

    def test_rg_pairs_all_corun_gains(self, fig7):
        """RG coruns with every distinct partner profitably."""
        for partner in ("BS", "GS", "MM", "TR"):
            assert fig7.row("RG", partner).gain("MPS") > 0.05

    def test_format(self, fig7):
        out = fig7_pairings.format_result(fig7)
        assert "avg gain" in out and "BS-RG" in out
