"""Parallel-runner and persistent-cache integration tests.

The acceptance bar for the caching layer: a second invocation of the full
battery with a warm profile cache performs **zero** offline-profiling
simulations, and the parallel runner is observationally identical to the
serial one on any subset of keys.
"""

import random

import pytest

from repro.experiments import runner
from repro.slate import profiler


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """Point every persistent cache at an empty directory for one test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    profiler.configure_profile_cache(root=tmp_path)
    try:
        yield tmp_path
    finally:
        # Lazily back to the environment-derived default for later tests
        # (deferred so it reads the *unpatched* environment).
        profiler.reset_profile_cache()


class TestWarmCache:
    def test_full_battery_second_run_does_zero_profile_simulations(self, fresh_cache):
        runner.run_all(jobs=1)  # cold: populates the cache
        assert profiler.PROFILE_SIMULATIONS.value > 0

        profiler.PROFILE_SIMULATIONS.reset()
        cold = runner.run_battery(jobs=1)
        assert profiler.PROFILE_SIMULATIONS.value == 0, (
            "warm-cache battery re-ran offline profiling simulations"
        )
        # ... and the warm results are byte-identical to a fresh battery.
        warm = runner.run_battery(jobs=1)
        for a, b in zip(cold, warm):
            assert a.key == b.key
            assert a.formatted == b.formatted

    def test_profile_cache_invalidates_on_device_change(self, fresh_cache):
        from repro.config import TESLA_V100, TITAN_XP, CostModel
        from repro.kernels import blackscholes

        cache = profiler.ProfileCache(root=fresh_cache)
        spec, costs = blackscholes(), CostModel()
        profiler.offline_profile(spec, TITAN_XP, costs, cache=cache)
        assert cache.get(spec, TITAN_XP, costs, 10, "device") is not None
        # A different device fingerprint must miss, not serve a stale hit.
        assert cache.get(spec, TESLA_V100, costs, 10, "device") is None
        # ... as must a drifted kernel spec under the same name.
        drifted = spec.scaled(2.0)
        assert cache.get(drifted, TITAN_XP, costs, 10, "device") is None

    def test_disabled_cache_always_simulates(self, tmp_path, monkeypatch):
        from repro.kernels import quasirandom

        cache = profiler.ProfileCache(root=tmp_path, enabled=False)
        before = profiler.PROFILE_SIMULATIONS.value
        p1 = profiler.offline_profile(quasirandom(), cache=cache)
        p2 = profiler.offline_profile(quasirandom(), cache=cache)
        assert profiler.PROFILE_SIMULATIONS.value == before + 2
        assert p1 == p2  # deterministic even without the cache
        assert len(cache) == 0


class TestParallelEquivalence:
    def test_serial_and_parallel_results_identical_on_sampled_subset(self, fresh_cache):
        # A seeded sample of the registry, so successive PRs exercise a
        # stable-but-nontrivial slice of the battery.
        keys = sorted(random.Random(1337).sample(runner.experiment_keys(), 6))
        serial = runner.run_battery(keys, jobs=1)
        parallel = runner.run_battery(keys, jobs=4)
        assert [r.key for r in serial] == [r.key for r in parallel]
        for s, p in zip(serial, parallel):
            assert s.result == p.result or s.formatted == p.formatted
            assert s.formatted == p.formatted

    def test_parallel_order_matches_battery_order(self, fresh_cache):
        keys = ["sweep", "fig1", "tab3"]  # deliberately out of battery order
        runs = runner.run_battery(keys, jobs=2)
        assert [r.key for r in runs] == ["fig1", "tab3", "sweep"]
