"""Utilization summary tests."""

import pytest

from repro.metrics.utilization import summarize_utilization


LOG = [
    (0.0, {"A": (0, 29)}),        # full device, 1 tenant, for 1 ms
    (1e-3, {"A": (0, 14), "B": (15, 29)}),  # shared for 2 ms
    (3e-3, {"B": (15, 29)}),      # half device for 1 ms
    (4e-3, {}),                   # idle for 1 ms
]


class TestSummary:
    def test_occupancy_integration(self):
        s = summarize_utilization(LOG, end_time=5e-3)
        # (1ms*30 + 2ms*30 + 1ms*15 + 1ms*0) / (5ms*30)
        assert s.mean_sm_occupancy == pytest.approx((30 + 60 + 15) / 150)
        assert s.duration == pytest.approx(5e-3)

    def test_tenancy_histogram(self):
        s = summarize_utilization(LOG, end_time=5e-3)
        assert s.tenancy[1] == pytest.approx(0.4)  # 1ms + 1ms of single tenant
        assert s.tenancy[2] == pytest.approx(0.4)
        assert s.tenancy[0] == pytest.approx(0.2)
        assert s.idle_fraction == pytest.approx(0.2)
        assert s.shared_fraction == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_utilization([], 1.0)
        with pytest.raises(ValueError):
            summarize_utilization(LOG, end_time=-1.0)

    def test_zero_duration(self):
        s = summarize_utilization([(0.0, {})], end_time=0.0)
        assert s.idle_fraction == 1.0

    def test_slate_shares_more_than_it_idles_on_bs_rg(self):
        """End to end: the BS-RG pairing spends most of its kernel window
        with two co-resident tenants."""
        from repro.workloads.harness import app_for, run_pair

        _, runtime = run_pair("Slate", app_for("BS"), app_for("RG"))
        log = runtime.scheduler.allocation_log
        summary = summarize_utilization(log, end_time=log[-1][0])
        assert summary.shared_fraction > 0.5
        assert summary.mean_sm_occupancy > 0.7
