"""nvprof-style collector tests."""

import pytest

from repro.config import TITAN_XP
from repro.gpu.device import ExecutionMode, KernelCounters, SimulatedGPU
from repro.kernels import gaussian
from repro.metrics.counters import METRIC_NAMES, NvprofReport, collect
from repro.sim import Environment
from repro.config import CostModel


def fake_counter(name="K", elapsed=1.0, flops=1e9, bytes_l2=1e9, instr=1e8, ldst=1e7):
    c = KernelCounters(name=name, start_time=0.0, end_time=elapsed)
    c.flops = flops
    c.bytes_l2 = bytes_l2
    c.bytes_dram = bytes_l2 * 0.8
    c.instructions = instr
    c.ldst = ldst
    c.busy_time = elapsed
    c.blocks_executed = 100
    return c


class TestCollect:
    def test_all_metrics_present(self):
        report = collect([fake_counter()])
        for metric in METRIC_NAMES:
            assert metric in report

    def test_rates_computed(self):
        report = collect([fake_counter(elapsed=2.0, flops=4e9, bytes_l2=8e9)])
        assert report["flop_count_sp"] == 4e9
        assert report["gld_gst_throughput_gbps"] == pytest.approx(4.0)
        assert report["dram_read_write_throughput_gbps"] == pytest.approx(3.2)
        assert report["launches"] == 1

    def test_aggregation_over_launches(self):
        counters = [fake_counter() for _ in range(5)]
        report = collect(counters)
        assert report["launches"] == 5
        assert report["flop_count_sp"] == 5e9
        # Rate unchanged (same per-launch profile).
        assert report["gld_gst_throughput_gbps"] == pytest.approx(1.0)

    def test_load_store_split(self):
        report = collect([fake_counter()])
        total = report["gld_gst_throughput_gbps"]
        assert report.gld_throughput() + report.gst_throughput() == pytest.approx(total)
        assert report.gld_throughput() > report.gst_throughput()

    def test_mixed_kernels_rejected(self):
        with pytest.raises(ValueError, match="different kernels"):
            collect([fake_counter("A"), fake_counter("B")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no counters"):
            collect([])

    def test_format_output(self):
        report = collect([fake_counter()])
        out = report.format()
        assert "==PROF==" in out
        assert "flop_count_sp" in out

    def test_real_run_ipc_consistent_with_table3(self):
        """Collector's IPC equals the Table III computation."""
        from repro.experiments.tab3_gaussian import device_ipc

        env = Environment()
        gpu = SimulatedGPU(env, TITAN_XP, CostModel())
        handle = gpu.launch(gaussian(num_blocks=96_000).work(), mode=ExecutionMode.HARDWARE)
        counters = env.run(until=handle.done)
        report = collect([counters])
        assert report["ipc"] == pytest.approx(device_ipc(counters, TITAN_XP))
        assert report["stall_memory_throttle"] == pytest.approx(
            counters.mem_throttle_fraction
        )
