"""ANTT/STP metric tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    antt,
    normalized_times,
    paper_antt_concurrent,
    paper_antt_consecutive,
    stp,
)


class TestNormalizedTimes:
    def test_basic(self):
        ratios = normalized_times({"a": 2.0, "b": 3.0}, {"a": 1.0, "b": 1.5})
        assert ratios == {"a": 2.0, "b": 2.0}

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            normalized_times({"a": 1.0}, {})

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            normalized_times({"a": 1.0}, {"a": 0.0})
        with pytest.raises(ValueError):
            normalized_times({"a": -1.0}, {"a": 1.0})


class TestAnttStp:
    def test_no_interference(self):
        shared = {"a": 1.0, "b": 2.0}
        assert antt(shared, shared) == pytest.approx(1.0)
        assert stp(shared, shared) == pytest.approx(2.0)

    def test_perfect_time_slicing(self):
        solo = {"a": 1.0, "b": 1.0}
        shared = {"a": 2.0, "b": 2.0}
        assert antt(shared, solo) == pytest.approx(2.0)
        assert stp(shared, solo) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            antt({}, {})
        with pytest.raises(ValueError):
            stp({}, {})

    @given(
        solo=st.dictionaries(
            st.sampled_from(list("abcdef")),
            st.floats(min_value=0.01, max_value=100),
            min_size=1,
        ),
        factor=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_uniform_slowdown(self, solo, factor):
        shared = {k: v * factor for k, v in solo.items()}
        assert antt(shared, solo) == pytest.approx(factor)
        assert stp(shared, solo) == pytest.approx(len(solo) / factor)

    @given(
        solo=st.dictionaries(
            st.sampled_from(list("abcd")),
            st.floats(min_value=0.01, max_value=100),
            min_size=2,
        ),
    )
    def test_antt_stp_bounds(self, solo):
        """With slowdowns >= 1, ANTT >= 1 and STP <= n."""
        shared = {k: v * 1.5 for k, v in solo.items()}
        assert antt(shared, solo) >= 1.0
        assert stp(shared, solo) <= len(solo)


class TestPaperForms:
    def test_consecutive_is_sum(self):
        assert paper_antt_consecutive([2.0, 3.0]) == 5.0

    def test_concurrent_is_max(self):
        assert paper_antt_concurrent([2.0, 3.0]) == 3.0

    def test_complementarity_criterion(self):
        """T' < T means the pair is complementary (paper definition)."""
        t_solo = [1.0, 1.0]
        t_corun_good = [1.2, 1.1]
        t_corun_bad = [2.5, 2.4]
        assert paper_antt_concurrent(t_corun_good) < paper_antt_consecutive(t_solo)
        assert paper_antt_concurrent(t_corun_bad) > paper_antt_consecutive(t_solo)

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_antt_consecutive([])
        with pytest.raises(ValueError):
            paper_antt_concurrent([-1.0])


class TestFormatTable:
    def test_renders_aligned(self):
        from repro.metrics import format_table

        out = format_table(["name", "value"], [["a", 1.5], ["bb", 20000.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "20,000" in out

    def test_row_width_mismatch(self):
        from repro.metrics import format_table

        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestFairness:
    def test_jain_index_even(self):
        from repro.metrics import fairness_index

        solo = {"a": 1.0, "b": 2.0}
        shared = {"a": 2.0, "b": 4.0}  # both slowed 2x
        assert fairness_index(shared, solo) == pytest.approx(1.0)

    def test_jain_index_skewed(self):
        from repro.metrics import fairness_index

        solo = {"a": 1.0, "b": 1.0}
        shared = {"a": 1.0, "b": 100.0}  # b starved
        idx = fairness_index(shared, solo)
        assert 0.5 < idx < 0.52  # approaches 1/n for 2 apps

    def test_max_slowdown_and_spread(self):
        from repro.metrics import max_slowdown, speedup_spread

        solo = {"a": 1.0, "b": 1.0}
        shared = {"a": 1.5, "b": 3.0}
        assert max_slowdown(shared, solo) == pytest.approx(3.0)
        assert speedup_spread(shared, solo) == pytest.approx(2.0)

    def test_empty_rejected(self):
        from repro.metrics import fairness_index, max_slowdown, speedup_spread

        for fn in (fairness_index, max_slowdown, speedup_spread):
            with pytest.raises(ValueError):
                fn({}, {})

    @given(
        solo=st.dictionaries(
            st.sampled_from(list("abcd")),
            st.floats(min_value=0.01, max_value=10),
            min_size=2,
        ),
        factors=st.lists(st.floats(min_value=1.0, max_value=10), min_size=4, max_size=4),
    )
    def test_jain_bounds(self, solo, factors):
        from repro.metrics import fairness_index

        shared = {k: v * factors[i] for i, (k, v) in enumerate(solo.items())}
        idx = fairness_index(shared, solo)
        n = len(solo)
        assert 1.0 / n - 1e-9 <= idx <= 1.0 + 1e-9

    def test_slate_is_fair_on_complementary_pair(self):
        """BS-RG under Slate: both tenants fare better than time slicing,
        and the fairness index stays high."""
        from repro.metrics import fairness_index
        from repro.workloads.harness import app_for, run_pair, run_solo

        solo = {
            b: run_solo("CUDA", app_for(b))[0].app_time for b in ("BS", "RG")
        }
        results, _ = run_pair("Slate", app_for("BS"), app_for("RG"))
        shared = {k: v.app_time for k, v in results.items()}
        assert fairness_index(shared, solo) > 0.9


class TestMarkdownTables:
    def test_markdown_style(self):
        from repro.metrics import format_table

        out = format_table(["a", "b"], [[1, 2.5]], title="T", style="markdown")
        lines = out.splitlines()
        assert lines[0] == "**T**"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| 1 | 2.500 |"

    def test_unknown_style(self):
        from repro.metrics import format_table

        with pytest.raises(ValueError, match="unknown table style"):
            format_table(["a"], [[1]], style="latex")
