"""Timeline renderer tests."""

import pytest

from repro.config import TITAN_XP
from repro.metrics.timeline import TimelineRow, build_timeline, render_timeline


LOG = [
    (0.0, {"GS": (0, 29)}),
    (1.0e-3, {"GS": (0, 26), "RG": (27, 29)}),
    (1.05e-3, {"GS": (0, 26), "RG": (27, 29)}),  # duplicate
    (2.0e-3, {"GS": (0, 29)}),
    (3.0e-3, {}),
]


class TestBuild:
    def test_deduplicates_identical_rows(self):
        rows = build_timeline(LOG)
        assert len(rows) == 4

    def test_coalesce_window_merges_transients(self):
        log = [
            (0.0, {"A": (0, 29)}),
            (1.0e-3, {"A": (0, 14)}),
            (1.1e-3, {"A": (0, 14), "B": (15, 29)}),
        ]
        rows = build_timeline(log, coalesce_window=0.5e-3)
        assert len(rows) == 2
        assert rows[-1].allocation == {"A": (0, 14), "B": (15, 29)}

    def test_empty_log(self):
        assert build_timeline([]) == []


class TestLane:
    def test_lane_letters(self):
        row = TimelineRow(start=0.0, allocation={"GS": (0, 26), "RG": (27, 29)})
        lane = row.lane(30)
        assert lane == "G" * 27 + "R" * 3

    def test_idle_dots(self):
        row = TimelineRow(start=0.0, allocation={"BS": (0, 11)})
        lane = row.lane(30)
        assert lane == "B" * 12 + "." * 18

    def test_overlap_marked(self):
        row = TimelineRow(start=0.0, allocation={"A": (0, 10), "B": (5, 15)})
        assert "#" in row.lane(30)


class TestRender:
    def test_render_structure(self):
        out = render_timeline(LOG, TITAN_XP)
        assert "SM allocation timeline" in out
        assert "GS[0-26], RG[27-29]" in out
        assert "idle" in out  # the final empty row

    def test_max_rows_truncation(self):
        log = [(i * 1e-3, {"A": (0, i % 29)}) for i in range(50)]
        out = render_timeline(log, TITAN_XP, max_rows=10)
        assert "more rows" in out

    def test_empty(self):
        assert render_timeline([]) == "(empty timeline)"

    def test_scheduler_log_renders(self):
        """End-to-end: a real scheduler run produces a renderable log."""
        from repro.workloads.harness import app_for, run_pair

        _, runtime = run_pair("Slate", app_for("BS", reps=3), app_for("RG", reps=3))
        out = render_timeline(runtime.scheduler.allocation_log, coalesce_window=0.2e-3)
        assert "B" in out and "R" in out


class TestChromeTrace:
    def test_export_structure(self):
        from repro.metrics.timeline import to_chrome_trace

        events = to_chrome_trace(LOG, end_time=4.0e-3)
        assert events, "expected trace events"
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] > 0
            assert e["args"]["sm_low"] <= e["args"]["sm_high"]
        # GS appears twice (its range changed), RG once.
        gs = [e for e in events if e["tid"] == "GS"]
        rg = [e for e in events if e["tid"] == "RG"]
        assert len(gs) == 3  # [0-29], [0-26], [0-29] again
        assert len(rg) == 1

    def test_durations_tile_the_timeline(self):
        from repro.metrics.timeline import to_chrome_trace

        events = to_chrome_trace(LOG, end_time=3.0e-3)
        gs = sorted((e for e in events if e["tid"] == "GS"), key=lambda e: e["ts"])
        for a, b in zip(gs, gs[1:]):
            assert a["ts"] + a["dur"] == pytest.approx(b["ts"])

    def test_json_serializable(self):
        import json

        from repro.metrics.timeline import to_chrome_trace

        json.dumps(to_chrome_trace(LOG, end_time=4e-3))

    def test_empty(self):
        from repro.metrics.timeline import to_chrome_trace

        assert to_chrome_trace([]) == []

    def test_real_run_exports(self, tmp_path):
        import json

        from repro.metrics.timeline import to_chrome_trace
        from repro.workloads.harness import app_for, run_pair

        _, runtime = run_pair("Slate", app_for("BS", reps=3), app_for("RG", reps=3))
        events = to_chrome_trace(runtime.scheduler.allocation_log)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(events))
        assert len(events) > 4
