"""Device memory allocator tests (unit + property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cuda.errors import CudaInvalidValue, CudaOutOfMemory
from repro.cuda.memory_manager import DeviceMemoryManager


class TestAllocFree:
    def test_simple_alloc(self):
        mm = DeviceMemoryManager(1 << 20)
        ptr = mm.alloc(1000)
        assert ptr.size == 1024  # rounded to 512B granule
        assert mm.used == 1024

    def test_alignment(self):
        mm = DeviceMemoryManager(1 << 20)
        assert mm.alloc(1).size == 512
        assert mm.alloc(512).size == 512
        assert mm.alloc(513).size == 1024

    def test_oom(self):
        mm = DeviceMemoryManager(4096)
        mm.alloc(4096)
        with pytest.raises(CudaOutOfMemory):
            mm.alloc(1)

    def test_free_returns_memory(self):
        mm = DeviceMemoryManager(4096)
        ptr = mm.alloc(4096)
        mm.free(ptr)
        assert mm.used == 0
        mm.alloc(4096)  # no raise

    def test_double_free_rejected(self):
        mm = DeviceMemoryManager(4096)
        ptr = mm.alloc(512)
        mm.free(ptr)
        with pytest.raises(CudaInvalidValue):
            mm.free(ptr)

    def test_invalid_sizes(self):
        mm = DeviceMemoryManager(4096)
        with pytest.raises(CudaInvalidValue):
            mm.alloc(0)
        with pytest.raises(CudaInvalidValue):
            mm.alloc(-5)
        with pytest.raises(CudaInvalidValue):
            DeviceMemoryManager(0)

    def test_coalescing_defragments(self):
        mm = DeviceMemoryManager(3 * 512)
        a = mm.alloc(512)
        b = mm.alloc(512)
        c = mm.alloc(512)
        mm.free(a)
        mm.free(c)
        mm.free(b)  # middle free should merge all three extents
        assert mm.largest_free_extent == 3 * 512
        mm.alloc(3 * 512)

    def test_allocations_do_not_overlap(self):
        mm = DeviceMemoryManager(1 << 16)
        ptrs = [mm.alloc(700) for _ in range(20)]
        spans = sorted((p.address, p.address + p.size) for p in ptrs)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_free_all(self):
        mm = DeviceMemoryManager(1 << 16)
        for _ in range(5):
            mm.alloc(1000)
        mm.free_all()
        assert mm.used == 0
        assert mm.allocation_count == 0


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=8192)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=50)),
        ),
        max_size=120,
    )
)
def test_allocator_invariants_under_random_workload(ops):
    """Accounting stays consistent and allocations never overlap."""
    mm = DeviceMemoryManager(1 << 18)
    live = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(mm.alloc(arg))
            except CudaOutOfMemory:
                pass
        elif live:
            mm.free(live.pop(arg % len(live)))
        # Invariants:
        assert mm.used == sum(p.size for p in live)
        assert 0 <= mm.used <= mm.capacity
        spans = sorted((p.address, p.address + p.size) for p in live)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
    for ptr in list(live):
        mm.free(ptr)
    assert mm.used == 0
    assert mm.largest_free_extent == mm.capacity
