"""Hyper-Q / stream concurrency tests for the vanilla CUDA runtime."""

import pytest

from repro.cuda import VanillaCudaRuntime
from repro.cuda.errors import CudaInvalidValue
from repro.kernels import synthetic
from repro.sim import Environment


def small_kernel(name="K", blocks=480, block_time=100e-6):
    return synthetic(0.01, 0.05, name=name, num_blocks=blocks, block_time=block_time)


class TestStreams:
    def test_create_stream(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")
        stream = s.create_stream()
        assert stream.context is s.context
        assert stream is not s.context.default_stream

    def test_foreign_stream_rejected(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")
        foreign = s2.create_stream()

        def app(env):
            with pytest.raises(CudaInvalidValue):
                yield from s1.launch(small_kernel(), stream=foreign)
            yield env.timeout(0)

        env.run(until=env.process(app(env)))

    def test_same_stream_kernels_serialize(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")

        def app(env):
            t1 = yield from s.launch(small_kernel("k1"))
            t2 = yield from s.launch(small_kernel("k2"))
            yield from s.synchronize()
            return t1, t2

        t1, t2 = env.run(until=env.process(app(env)))
        assert rt.hyperq_coruns == 0
        # Disjoint execution windows.
        assert t2.started_at >= t1.counters.end_time - 1e-9

    def test_different_streams_corun(self):
        """Two streams' kernels overlap via Hyper-Q (one context)."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")

        def app(env):
            stream2 = s.create_stream()
            t1 = yield from s.launch(small_kernel("k1"))
            t2 = yield from s.launch(small_kernel("k2"), stream=stream2)
            yield from s.synchronize()
            return t1, t2

        t1, t2 = env.run(until=env.process(app(env)))
        assert rt.hyperq_coruns == 1
        # Overlapping windows.
        assert t2.started_at < t1.counters.end_time

    def test_hyperq_speeds_up_small_kernels(self):
        """Device-filling split: two half-device kernels finish faster
        concurrently than serialized."""

        def run(two_streams: bool) -> float:
            env = Environment()
            rt = VanillaCudaRuntime(env)
            s = rt.create_session("app")

            def app(env):
                streams = [None, s.create_stream() if two_streams else None]
                for i in range(2):
                    kwargs = {"stream": streams[i]} if streams[i] else {}
                    yield from s.launch(small_kernel(f"k{i}", blocks=240), **kwargs)
                yield from s.synchronize()

            env.run(until=env.process(app(env)))
            return env.now

        serial = run(two_streams=False)
        concurrent = run(two_streams=True)
        assert concurrent < 0.75 * serial

    def test_cross_context_never_coruns(self):
        """Hyper-Q works within one context only — different processes
        still time-slice (that's why MPS/Slate exist)."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env, session, name):
            yield from session.launch(small_kernel(name))
            yield from session.synchronize()

        p1 = env.process(app(env, s1, "k1"))
        p2 = env.process(app(env, s2, "k2"))
        env.run(until=p1 & p2)
        assert rt.hyperq_coruns == 0
        assert rt.context_switches >= 1

    def test_stream_launch_counter(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")

        def app(env):
            stream = s.create_stream()
            yield from s.launch(small_kernel(), stream=stream)
            yield from s.launch(small_kernel(), stream=stream)
            yield from s.synchronize()
            return stream

        stream = env.run(until=env.process(app(env)))
        assert stream.launches == 2
