"""NVRTC compiler-cache and PCIe link tests."""

import pytest

from repro.config import CostModel, HostConfig
from repro.cuda.module import NvrtcCompiler
from repro.gpu.pcie import PcieLink
from repro.sim import Environment


class TestNvrtc:
    def test_first_compile_pays_cost(self):
        env = Environment()
        costs = CostModel()
        nv = NvrtcCompiler(env, costs)

        def proc(env):
            module = yield from nv.compile("kernelA")
            return module

        p = env.process(proc(env))
        module = env.run(until=p)
        assert not module.from_cache
        assert env.now == pytest.approx(
            costs.nvrtc_compile_time + costs.code_injection_time
        )

    def test_cache_hit_is_free(self):
        env = Environment()
        nv = NvrtcCompiler(env)

        def proc(env):
            yield from nv.compile("k")
            t_after_first = env.now
            module = yield from nv.compile("k")
            return t_after_first, env.now, module

        t1, t2, module = env.run(until=env.process(proc(env)))
        assert t1 == t2  # no extra time
        assert module.from_cache
        assert nv.cache_hits == 1
        assert nv.compile_count == 1

    def test_no_injection_for_plain_load(self):
        env = Environment()
        costs = CostModel()
        nv = NvrtcCompiler(env, costs)

        def proc(env):
            yield from nv.compile("k", inject=False)

        env.run(until=env.process(proc(env)))
        assert env.now == pytest.approx(costs.nvrtc_compile_time)
        assert nv.total_injection_time == 0.0

    def test_invalidate_forces_recompile(self):
        env = Environment()
        nv = NvrtcCompiler(env)

        def proc(env):
            yield from nv.compile("k")
            nv.invalidate("k")
            assert not nv.is_cached("k")
            yield from nv.compile("k")

        env.run(until=env.process(proc(env)))
        assert nv.compile_count == 2


class TestPcie:
    def test_transfer_time_model(self):
        env = Environment()
        host = HostConfig(pcie_bandwidth=10e9, pcie_latency=1e-5)
        link = PcieLink(env, host)

        def proc(env):
            yield from link.transfer(1e9)

        env.run(until=env.process(proc(env)))
        assert env.now == pytest.approx(1e-5 + 0.1)
        assert link.bytes_moved == 1e9
        assert link.transfer_count == 1

    def test_transfers_serialize(self):
        env = Environment()
        link = PcieLink(env)
        done = []

        def proc(env, nbytes):
            yield from link.transfer(nbytes)
            done.append(env.now)

        env.process(proc(env, 12e9))  # ~1 s
        env.process(proc(env, 12e9))
        env.run()
        assert done[1] == pytest.approx(2 * done[0], rel=0.01)

    def test_negative_size_rejected(self):
        env = Environment()
        link = PcieLink(env)
        with pytest.raises(ValueError):
            list(link.transfer(-1))
