"""Vanilla CUDA runtime tests: sessions, dispatch, time slicing."""

import pytest

from repro.config import CostModel
from repro.cuda import VanillaCudaRuntime
from repro.cuda.errors import CudaContextDestroyed
from repro.kernels import blackscholes, quasirandom, synthetic
from repro.sim import Environment


def small_kernel(name="K", blocks=960):
    return synthetic(0.02, 0.05, name=name, num_blocks=blocks, block_time=10e-6)


class TestSession:
    def test_malloc_and_free(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")

        def app(env):
            ptr = yield from session.malloc(1 << 20)
            assert rt.memory.used >= 1 << 20
            yield from session.free(ptr)
            assert session.context.allocated_bytes == 0

        env.run(until=env.process(app(env)))

    def test_memcpy_takes_pcie_time(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")
        nbytes = 1 << 30  # 1 GiB at 12 GB/s ~ 89 ms

        def app(env):
            yield from session.memcpy_h2d(nbytes)

        env.run(until=env.process(app(env)))
        expected = rt.pcie.transfer_time(nbytes)
        assert env.now == pytest.approx(expected, rel=1e-6)

    def test_launch_and_synchronize(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")

        def app(env):
            ticket = yield from session.launch(small_kernel())
            assert not ticket.done.triggered
            yield from session.synchronize()
            assert ticket.done.triggered
            return ticket.counters

        proc = env.process(app(env))
        counters = env.run(until=proc)
        assert counters.blocks_executed == pytest.approx(960)

    def test_close_frees_context(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")

        def app(env):
            yield from session.malloc(4096)
            session.close()

        env.run(until=env.process(app(env)))
        assert rt.memory.used == 0
        with pytest.raises(CudaContextDestroyed):
            session.context.alloc(1)

    def test_two_sessions_isolated_memory(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env):
            yield from s1.malloc(4096)
            yield from s2.malloc(8192)
            s1.close()

        env.run(until=env.process(app(env)))
        assert s2.context.allocated_bytes == 8192
        assert rt.memory.used == 8192


class TestTimeSlicing:
    def test_kernels_from_two_processes_serialize(self):
        """The device runs one context's kernel at a time."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s1, s2 = rt.create_session("p1"), rt.create_session("p2")
        spans = {}

        def app(env, session, name):
            ticket = yield from session.launch(small_kernel(name))
            yield from session.synchronize()
            spans[name] = (ticket.started_at, env.now)

        p1 = env.process(app(env, s1, "k1"))
        p2 = env.process(app(env, s2, "k2"))
        env.run(until=p1 & p2)
        (a0, a1), (b0, b1) = spans["k1"], spans["k2"]
        assert a1 <= b0 or b1 <= a0  # disjoint execution windows

    def test_context_switch_cost_charged(self):
        costs = CostModel(context_switch_overhead=5e-3)
        env = Environment()
        rt = VanillaCudaRuntime(env, costs=costs)
        s1, s2 = rt.create_session("p1"), rt.create_session("p2")

        def app(env, session):
            yield from session.launch(small_kernel())
            yield from session.synchronize()

        p1 = env.process(app(env, s1))
        p2 = env.process(app(env, s2))
        env.run(until=p1 & p2)
        assert rt.context_switches >= 1

        # Same two kernels from ONE process: no switch.
        env2 = Environment()
        rt2 = VanillaCudaRuntime(env2, costs=costs)
        s = rt2.create_session("only")

        def app_two(env):
            yield from s.launch(small_kernel())
            yield from s.launch(small_kernel())
            yield from s.synchronize()

        env2.run(until=env2.process(app_two(env2)))
        assert rt2.context_switches == 0

    def test_alternating_launches_interleave_fairly(self):
        """With both processes looping, each gets kernel-granular turns."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        order = []

        def app(env, session, name, reps):
            for _ in range(reps):
                ticket = yield from session.launch(small_kernel(name))
                yield from session.synchronize()
                order.append(name)

        s1, s2 = rt.create_session("p1"), rt.create_session("p2")
        p1 = env.process(app(env, s1, "A", 4))
        p2 = env.process(app(env, s2, "B", 4))
        env.run(until=p1 & p2)
        # Strict alternation A B A B ... given sync-per-launch loops.
        assert order[:2] in (["A", "B"], ["B", "A"])
        assert len(order) == 8
        assert order.count("A") == order.count("B") == 4


class TestRealKernelsThroughRuntime:
    def test_blackscholes_app_flow(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("bs-app")
        spec = blackscholes(num_blocks=960, reps=3)

        def app(env):
            ptr = yield from session.malloc(spec.device_footprint)
            yield from session.memcpy_h2d(spec.h2d_bytes)
            for _ in range(spec.default_reps):
                yield from session.launch(spec)
                yield from session.synchronize()
            yield from session.memcpy_d2h(spec.d2h_bytes)
            yield from session.free(ptr)
            session.close()

        env.run(until=env.process(app(env)))
        assert env.now > 0
        assert rt.memory.used == 0

    def test_rg_kernel_counters_present(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("rg")

        def app(env):
            ticket = yield from session.launch(quasirandom(num_blocks=960))
            yield from session.synchronize()
            return ticket

        ticket = env.run(until=env.process(app(env)))
        assert ticket.counters is not None
        assert ticket.queue_delay >= 0


class TestDeviceCopies:
    def test_d2d_copy_takes_bandwidth_time(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")
        nbytes = 512 * 1024 * 1024  # 0.5 GiB -> 1 GiB of traffic

        def app(env):
            yield from session.memcpy_d2d(nbytes)
            return env.now

        t = env.run(until=env.process(app(env)))
        # Bounded below by 2*nbytes at DRAM peak bandwidth.
        from repro.config import TITAN_XP

        assert t >= 2 * nbytes / TITAN_XP.dram_bandwidth * 0.9

    def test_d2d_faster_than_pcie_round_trip(self):
        """Device-side copies never touch PCIe."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")
        nbytes = 256 * 1024 * 1024

        def d2d(env):
            yield from session.memcpy_d2d(nbytes)
            return env.now

        t_d2d = env.run(until=env.process(d2d(env)))
        assert t_d2d < rt.pcie.transfer_time(nbytes)
        assert rt.pcie.transfer_count == 0

    def test_memset_scales_with_allocation(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")

        def app(env):
            small = yield from session.malloc(1 << 20)
            big = yield from session.malloc(1 << 28)
            t0 = env.now
            yield from session.memset(small)
            t_small = env.now - t0
            t0 = env.now
            yield from session.memset(big)
            return t_small, env.now - t0

        t_small, t_big = env.run(until=env.process(app(env)))
        assert t_big > 10 * t_small

    def test_negative_copy_rejected(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        with pytest.raises(ValueError):
            list(rt.device_copy(-1))
