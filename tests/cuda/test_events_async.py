"""CUDA events and async-copy tests."""

import pytest

from repro.cuda import VanillaCudaRuntime
from repro.cuda.errors import CudaInvalidValue
from repro.cuda.event import elapsed_time
from repro.kernels import synthetic
from repro.sim import Environment


def small_kernel(name="K", blocks=480, block_time=100e-6):
    return synthetic(0.01, 0.05, name=name, num_blocks=blocks, block_time=block_time)


class TestEvents:
    def test_event_timing_around_kernel(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")

        def app(env):
            start, end = s.create_event(), s.create_event()
            s.record_event(start)  # empty chain: completes immediately
            yield from s.launch(small_kernel())
            s.record_event(end)
            yield from s.synchronize()
            yield end.wait()
            return elapsed_time(start, end)

        ms = env.run(until=env.process(app(env)))
        # One wave of 100 us blocks ~ 0.1 ms (+ overheads).
        assert 0.05 <= ms <= 0.5

    def test_unrecorded_event_wait_rejected(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")
        event = s.create_event()
        with pytest.raises(CudaInvalidValue):
            event.wait()

    def test_elapsed_requires_completion(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")
        a, b = s.create_event(), s.create_event()
        with pytest.raises(CudaInvalidValue):
            elapsed_time(a, b)

    def test_event_fires_after_pending_chain(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")

        def app(env):
            ticket = yield from s.launch(small_kernel())
            marker = s.create_event()
            s.record_event(marker)
            assert not marker.complete  # kernel still in flight
            yield marker.wait()
            assert marker.complete
            assert ticket.done.triggered
            return marker.timestamp

        t = env.run(until=env.process(app(env)))
        assert t == pytest.approx(env.now)


class TestAsyncCopies:
    def test_async_copy_returns_before_completion(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")
        nbytes = 1 << 30  # ~89 ms on PCIe

        def app(env):
            done = yield from s.memcpy_h2d_async(nbytes)
            t_enqueue = env.now
            assert not done.processed
            yield done
            return t_enqueue, env.now

        t_enqueue, t_done = env.run(until=env.process(app(env)))
        assert t_done - t_enqueue == pytest.approx(
            rt.pcie.transfer_time(nbytes), rel=0.01
        )

    def test_same_stream_copy_then_kernel_order(self):
        """An async copy ordered before a same-stream kernel launch chain."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")

        def app(env):
            c1 = yield from s.memcpy_h2d_async(1 << 28)
            c2 = yield from s.memcpy_d2h_async(1 << 28)
            yield from s.stream_synchronize()
            assert c1.processed and c2.processed
            # Second copy completes after the first (same stream chain).
            assert c2.value >= c1.value
            return env.now

        env.run(until=env.process(app(env)))

    def test_copy_overlaps_other_streams_kernel(self):
        """Copy engine and SMs are independent resources."""
        env = Environment()
        rt = VanillaCudaRuntime(env)
        s = rt.create_session("app")
        kernel = small_kernel(block_time=1e-3)  # ~1 ms
        nbytes = int(12e9 * 1e-3)  # ~1 ms of PCIe time

        def serial(env):
            yield from s.launch(kernel)
            yield from s.synchronize()
            yield from s.memcpy_h2d(nbytes)
            return env.now

        t_serial = env.run(until=env.process(serial(env)))

        env2 = Environment()
        rt2 = VanillaCudaRuntime(env2)
        s2 = rt2.create_session("app")

        def overlapped(env):
            copy_stream = s2.create_stream()
            done = yield from s2.memcpy_h2d_async(nbytes, stream=copy_stream)
            yield from s2.launch(kernel)
            yield from s2.synchronize()
            if not done.processed:
                yield done
            return env.now

        t_overlap = env2.run(until=env2.process(overlapped(env2)))
        assert t_overlap < 0.75 * t_serial
