"""Direct CudaContext / CudaStream unit tests."""

import pytest

from repro.cuda.context import CudaContext, CudaStream
from repro.cuda.errors import CudaContextDestroyed
from repro.cuda.memory_manager import DeviceMemoryManager


def make_context(capacity=1 << 20, owner="test"):
    return CudaContext(DeviceMemoryManager(capacity), owner=owner)


class TestContext:
    def test_default_stream_exists(self):
        ctx = make_context()
        assert isinstance(ctx.default_stream, CudaStream)
        assert ctx.default_stream.context is ctx

    def test_alloc_tracked_per_context(self):
        mm = DeviceMemoryManager(1 << 20)
        a, b = CudaContext(mm, "a"), CudaContext(mm, "b")
        pa = a.alloc(1024)
        b.alloc(2048)
        assert a.allocated_bytes == 1024
        assert b.allocated_bytes == 2048
        a.free(pa)
        assert a.allocated_bytes == 0
        assert mm.used == 2048

    def test_destroy_frees_everything(self):
        mm = DeviceMemoryManager(1 << 20)
        ctx = CudaContext(mm)
        ctx.alloc(4096)
        ctx.alloc(4096)
        ctx.destroy()
        assert mm.used == 0
        assert not ctx.alive

    def test_destroy_idempotent(self):
        ctx = make_context()
        ctx.destroy()
        ctx.destroy()

    def test_operations_after_destroy_rejected(self):
        ctx = make_context()
        ctx.destroy()
        for op in (lambda: ctx.alloc(1), ctx.create_stream):
            with pytest.raises(CudaContextDestroyed):
                op()

    def test_free_foreign_pointer_rejected(self):
        mm = DeviceMemoryManager(1 << 20)
        a, b = CudaContext(mm), CudaContext(mm)
        ptr = a.alloc(512)
        with pytest.raises(ValueError):
            b.free(ptr)

    def test_unique_ids_and_owner(self):
        a, b = make_context(owner="x"), make_context(owner="y")
        assert a.id != b.id
        assert a.owner == "x"


class TestStream:
    def test_create_stream_registers(self):
        ctx = make_context()
        s1, s2 = ctx.create_stream(), ctx.create_stream()
        assert s1.id != s2.id
        assert s1.context is ctx

    def test_fresh_stream_chain_is_empty(self):
        ctx = make_context()
        stream = ctx.create_stream()
        assert stream.last_op is None
        assert stream.launches == 0
