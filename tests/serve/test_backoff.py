"""Client backoff regression tests: the server's ``retry_after`` hint is
always honoured as a floor, and the jitter on top is deterministic per
seed — rejected clients de-synchronize, reproducibly."""

import pytest

from repro.serve import client as client_mod
from repro.serve.client import SlateClient
from repro.serve.protocol import ServerBusyError
from repro.serve.server import ServeConfig, ServerThread


@pytest.fixture
def sock_path(tmp_path):
    path = tmp_path / "slate.sock"
    assert len(str(path)) < 100, f"socket path too long: {path}"
    return str(path)


class TestBackoffDelay:
    def test_retry_after_is_a_floor(self):
        client = SlateClient("/tmp/x.sock", backoff_seed="s")
        for retries in range(6):
            delay = client._backoff_delay(0.25, retries)
            assert delay >= 0.25

    def test_capped_at_one_second(self):
        client = SlateClient("/tmp/x.sock", backoff_seed="s")
        assert client._backoff_delay(5.0, 0) == 1.0
        assert client._backoff_delay(0.01, 30) <= 1.0

    def test_deterministic_per_seed(self):
        a = SlateClient("/tmp/x.sock", backoff_seed="alpha")
        b = SlateClient("/tmp/x.sock", backoff_seed="alpha")
        sequence_a = [a._backoff_delay(0.02, i) for i in range(8)]
        sequence_b = [b._backoff_delay(0.02, i) for i in range(8)]
        assert sequence_a == sequence_b

    def test_different_seeds_desynchronize(self):
        a = SlateClient("/tmp/x.sock", backoff_seed="alpha")
        b = SlateClient("/tmp/x.sock", backoff_seed="beta")
        sequence_a = [a._backoff_delay(0.02, i) for i in range(8)]
        sequence_b = [b._backoff_delay(0.02, i) for i in range(8)]
        assert sequence_a != sequence_b

    def test_jitter_scale_grows_exponentially(self):
        # With the RNG pinned to 1.0, the delay is exactly the hint plus
        # busy_backoff * 2**retries — the exponential envelope.
        client = SlateClient("/tmp/x.sock", backoff_seed="s")
        client._backoff_rng.random = lambda: 1.0
        assert client._backoff_delay(0.1, 0, busy_backoff=0.01) == pytest.approx(0.11)
        assert client._backoff_delay(0.1, 3, busy_backoff=0.01) == pytest.approx(0.18)


class TestBackoffOverTheWire:
    def test_sleeps_honour_server_hint(self, sock_path, monkeypatch):
        """Against a saturated daemon every retry sleep is >= the typed
        reply's retry_after, and the sequence is the seeded one."""
        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        with ServerThread(ServeConfig(socket_path=sock_path, max_inflight=0)):
            with SlateClient(sock_path, backoff_seed="pinned") as client:
                with pytest.raises(ServerBusyError) as excinfo:
                    client.launch("BS", busy_retries=4)
        hint = excinfo.value.retry_after
        assert hint > 0
        assert len(sleeps) == 4
        assert all(delay >= hint for delay in sleeps)
        expected = SlateClient("/tmp/x.sock", backoff_seed="pinned")
        assert sleeps == [expected._backoff_delay(hint, i) for i in range(4)]
