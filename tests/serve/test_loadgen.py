"""Load-generator tests: mix parsing, per-seed determinism, aggregation,
and small end-to-end runs against a live daemon."""

import json

import pytest

from repro.kernels.registry import UnknownKernelError
from repro.serve.loadgen import (
    LoadGenConfig,
    parse_mix,
    percentile,
    plan_client,
    run_loadgen,
)
from repro.serve.server import ServeConfig, ServerThread


class TestMixParsing:
    def test_weighted_mix(self):
        assert parse_mix("BS:2,MM:1") == [("BS", 2.0), ("MM", 1.0)]

    def test_default_weight_is_one(self):
        assert parse_mix("bs,gs") == [("BS", 1.0), ("GS", 1.0)]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(UnknownKernelError):
            parse_mix("BS:1,NOPE:2")

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            parse_mix("BS:0")
        with pytest.raises(ValueError):
            parse_mix("")

    def test_config_validates_eagerly(self):
        with pytest.raises(UnknownKernelError):
            LoadGenConfig(socket_path="/tmp/x.sock", mix="WAT:1")
        with pytest.raises(ValueError):
            LoadGenConfig(socket_path="/tmp/x.sock", mode="bursty")


class TestDeterminism:
    def test_same_seed_same_plan(self):
        cfg = LoadGenConfig(socket_path="/tmp/x.sock", seed=7, requests=40)
        assert plan_client(cfg, 0) == plan_client(cfg, 0)
        assert plan_client(cfg, 3) == plan_client(cfg, 3)

    def test_different_clients_different_plans(self):
        cfg = LoadGenConfig(socket_path="/tmp/x.sock", seed=7, requests=40)
        assert plan_client(cfg, 0)[0] != plan_client(cfg, 1)[0]

    def test_different_seeds_different_plans(self):
        a = LoadGenConfig(socket_path="/tmp/x.sock", seed=1, requests=40)
        b = LoadGenConfig(socket_path="/tmp/x.sock", seed=2, requests=40)
        assert plan_client(a, 0)[0] != plan_client(b, 0)[0]

    def test_open_loop_offsets_monotonic(self):
        cfg = LoadGenConfig(
            socket_path="/tmp/x.sock", mode="open", rate=100.0, requests=20
        )
        _, offsets = plan_client(cfg, 0)
        assert offsets == sorted(offsets)
        assert all(t > 0 for t in offsets)

    def test_closed_loop_has_no_offsets(self):
        cfg = LoadGenConfig(socket_path="/tmp/x.sock", requests=5)
        _, offsets = plan_client(cfg, 0)
        assert offsets == [0.0] * 5

    def test_mix_weights_steer_the_plan(self):
        cfg = LoadGenConfig(
            socket_path="/tmp/x.sock", mix="BS:100,TR:1", requests=60, seed=0
        )
        kernels, _ = plan_client(cfg, 0)
        assert kernels.count("BS") > kernels.count("TR")


class TestPercentile:
    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_single(self):
        assert percentile([4.2], 50) == 4.2

    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


@pytest.fixture
def sock_path(tmp_path):
    path = tmp_path / "slate.sock"
    assert len(str(path)) < 100
    return str(path)


class TestEndToEnd:
    def test_threaded_run_completes_everything(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            launches0 = server._m_launches.value
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=3,
                    requests=6,
                    seed=11,
                    processes=False,
                )
            )
            assert report.completed == 18
            assert report.errors == 0
            assert report.requests_per_s > 0
            assert 0 < report.latency_p50 <= report.latency_p99 <= report.latency_max
            assert sum(report.kernels.values()) == 18
            assert server._m_launches.value - launches0 == 18

    def test_open_loop_run(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=2,
                    requests=4,
                    mode="open",
                    rate=500.0,
                    processes=False,
                )
            )
            assert report.completed == 8
            assert report.errors == 0

    def test_process_clients(self, sock_path):
        """Real OS processes over the socket — the acceptance-criteria path."""
        with ServerThread(ServeConfig(socket_path=sock_path)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path, clients=2, requests=3, processes=True
                )
            )
            assert report.completed == 6
            assert report.errors == 0

    def test_report_round_trips_through_json(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path, clients=1, requests=3, processes=False
                )
            )
        body = json.loads(report.to_json())
        assert body["completed"] == 3
        assert body["errors"] == 0
        assert {"latency_p50", "latency_p99", "requests_per_s"} <= set(body)
        # Raw latency lists are summarized to counts in the export.
        assert body["per_client"][0]["latencies"] == 3

    def test_backpressure_retries_eventually_land(self, sock_path):
        """With a tiny admission bound and many concurrent clients, busy
        replies happen but retried launches complete with zero errors."""
        with ServerThread(
            ServeConfig(socket_path=sock_path, max_inflight=1)
        ):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=4,
                    requests=3,
                    busy_retries=50,
                    processes=False,
                )
            )
            assert report.completed == 12
            assert report.errors == 0


class TestWarmupAndMixMode:
    def test_warmup_requests_excluded_from_stats(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=2,
                    requests=4,
                    warmup=3,
                    processes=False,
                )
            )
            # Warmup launches hit the server but never the statistics.
            assert report.completed == 8
            assert report.warmup_completed == 6
            assert len(report.per_client[0].latencies) == 4
            assert server._m_launches.value >= 14

    def test_measure_wall_excludes_spawn(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=2,
                    requests=3,
                    warmup=1,
                    processes=False,
                )
            )
            assert 0 < report.measure_wall <= report.wall
            assert report.requests_per_s == pytest.approx(
                report.completed / report.measure_wall
            )

    def test_client_mix_mode_gives_each_client_one_kernel(self):
        cfg = LoadGenConfig(
            socket_path="/tmp/x.sock",
            requests=20,
            warmup=2,
            mix_mode="client",
            seed=5,
        )
        kernels, offsets = plan_client(cfg, 0)
        assert len(kernels) == 22  # warmup + requests
        assert len(set(kernels)) == 1
        # Different clients can draw different kernels, deterministically.
        assert plan_client(cfg, 1) == plan_client(cfg, 1)

    def test_mix_mode_validated(self):
        with pytest.raises(ValueError):
            LoadGenConfig(socket_path="/tmp/x.sock", mix_mode="chaotic")
        with pytest.raises(ValueError):
            LoadGenConfig(socket_path="/tmp/x.sock", warmup=-1)

    def test_sim_throughput_reported_per_shard(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path, shards=2)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=4,
                    requests=5,
                    mix="MM:1,RG:1",
                    mix_mode="client",
                    processes=False,
                    seed=2,
                )
            )
            assert report.errors == 0
            assert report.sim_requests_per_s > 0
            assert report.sim_latency_p50 > 0
            assert sum(b["completed"] for b in report.shards.values()) == 20
            # Sessions landed on real shards and the report says which.
            assert set(report.shards) <= {"0", "1"}
