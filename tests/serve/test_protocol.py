"""Wire-protocol tests: framing round trips, malformed-frame rejection,
request validation, and the typed-error mapping."""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.registry import UnknownKernelError
from repro.serve import protocol
from repro.serve.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    ProtocolError,
    ServerBusyError,
    SessionLimitError,
    UnknownOperationError,
    decode_payload,
    encode_frame,
    error_from_reply,
    error_reply,
    ok_reply,
    request,
    validate_request,
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=12,
)
messages = st.dictionaries(st.text(max_size=8), json_values, max_size=5)


class TestFraming:
    def test_single_round_trip(self):
        msg = request(1, "launch", kernel="MM", task_size=10)
        decoded = FrameDecoder().feed(encode_frame(msg))
        assert decoded == [msg]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(messages, min_size=1, max_size=4))
    def test_stream_round_trip_identity(self, msgs):
        """encode+concatenate then decode == the original message list."""
        stream = b"".join(encode_frame(m) for m in msgs)
        assert FrameDecoder().feed(stream) == msgs

    @settings(max_examples=50, deadline=None)
    @given(st.lists(messages, min_size=1, max_size=3), st.integers(1, 7))
    def test_arbitrary_chunking(self, msgs, chunk):
        """The decoder reassembles frames no matter how the stream splits."""
        stream = b"".join(encode_frame(m) for m in msgs)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i:i + chunk]))
        assert out == msgs
        assert decoder.buffered == 0

    def test_partial_frame_is_buffered_not_decoded(self):
        frame = encode_frame({"id": 1, "op": "ping", "params": {}})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.buffered == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [{"id": 1, "op": "ping", "params": {}}]


class TestMalformedFrames:
    def test_zero_length_frame_rejected(self):
        with pytest.raises(FrameError, match="zero-length"):
            FrameDecoder().feed(struct.pack("!I", 0))

    def test_oversize_length_rejected(self):
        with pytest.raises(FrameError, match="exceeds"):
            FrameDecoder().feed(struct.pack("!I", MAX_FRAME + 1))

    def test_oversize_outbound_rejected(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_non_json_payload_rejected(self):
        payload = b"\xff\xfe not json"
        with pytest.raises(FrameError, match="not valid JSON"):
            FrameDecoder().feed(struct.pack("!I", len(payload)) + payload)

    def test_non_object_payload_rejected(self):
        for literal in (b"[1,2]", b'"hi"', b"42", b"null"):
            with pytest.raises(FrameError, match="JSON object"):
                decode_payload(literal)

    def test_decoder_unusable_frames_do_not_leak_messages(self):
        """A good frame followed by garbage yields the good one, then raises."""
        good = encode_frame({"id": 1, "op": "ping", "params": {}})
        decoder = FrameDecoder()
        bad = struct.pack("!I", 3) + b"{{{"
        msgs = decoder.feed(good)
        assert len(msgs) == 1
        with pytest.raises(FrameError):
            decoder.feed(bad)


class TestValidation:
    def test_valid_request(self):
        rid, op, params = validate_request(request(7, "launch", kernel="BS"))
        assert (rid, op, params) == (7, "launch", {"kernel": "BS"})

    def test_string_ids_allowed(self):
        rid, _, _ = validate_request(request("req-1", "ping"))
        assert rid == "req-1"

    @pytest.mark.parametrize(
        "msg",
        [
            {"op": "ping", "params": {}},            # missing id
            {"id": None, "op": "ping"},              # bad id type
            {"id": True, "op": "ping"},              # bool is not an id
            {"id": 1},                               # missing op
            {"id": 1, "op": 42},                     # bad op type
            {"id": 1, "op": "ping", "params": [1]},  # params not an object
        ],
    )
    def test_schema_violations(self, msg):
        with pytest.raises(ProtocolError):
            validate_request(msg)

    def test_unknown_op(self):
        with pytest.raises(UnknownOperationError, match="warp_drive"):
            validate_request(request(1, "warp_drive"))


class TestErrorMapping:
    def test_unknown_kernel_round_trip(self):
        reply = error_reply(3, UnknownKernelError("unknown benchmark 'XX'"))
        assert reply["ok"] is False
        assert reply["error"]["type"] == "UnknownKernel"
        exc = error_from_reply(reply)
        assert isinstance(exc, UnknownKernelError)
        assert "XX" in str(exc)

    def test_backpressure_carries_retry_hint(self):
        reply = error_reply(1, ServerBusyError("full", retry_after=0.25))
        assert reply["error"]["details"]["retry_after"] == 0.25
        exc = error_from_reply(reply)
        assert isinstance(exc, ServerBusyError)
        assert exc.retry_after == 0.25

    def test_every_wire_type_rebuilds_its_class(self):
        for wire_type, cls in protocol.ERROR_TYPES.items():
            reply = {
                "id": 1,
                "ok": False,
                "error": {"type": wire_type, "message": "m"},
            }
            assert type(error_from_reply(reply)) is cls

    def test_unknown_wire_type_degrades_to_server_error(self):
        reply = {"id": 1, "ok": False, "error": {"type": "Exotic", "message": "m"}}
        assert isinstance(error_from_reply(reply), protocol.ServerError)

    def test_uncategorized_exception_maps_to_server_error(self):
        wire_type, message, details = protocol.exception_to_error(RuntimeError("boom"))
        assert wire_type == "ServerError"
        assert message == "boom"

    def test_session_limit_is_distinct_from_server_busy(self):
        busy = error_from_reply(error_reply(1, ServerBusyError("g")))
        limit = error_from_reply(error_reply(1, SessionLimitError("s")))
        assert isinstance(busy, ServerBusyError)
        assert isinstance(limit, SessionLimitError)
        assert not isinstance(busy, SessionLimitError)


class TestReplies:
    def test_ok_reply_shape(self):
        assert ok_reply(9, {"a": 1}) == {"id": 9, "ok": True, "result": {"a": 1}}
        assert ok_reply(9) == {"id": 9, "ok": True, "result": {}}

    def test_version_constant_is_wire_visible(self):
        msg = request(1, "hello", version=PROTOCOL_VERSION)
        assert json.loads(encode_frame(msg)[4:])["params"]["version"] == PROTOCOL_VERSION
