"""Daemon tests: session lifecycle, concurrency, reaping, admission control.

Every test runs a real server on a Unix socket (in a background thread via
:class:`ServerThread`) and talks to it through real sockets — the same
path ``repro serve`` exercises, minus the process boundary.
"""

import socket
import threading
import time

import pytest

from repro.kernels.registry import UnknownKernelError
from repro.serve.client import SlateClient
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ServerBusyError,
    SessionLimitError,
    SessionStateError,
    VersionMismatchError,
    request,
)
from repro.serve.server import ServeConfig, ServerThread


@pytest.fixture
def sock_path(tmp_path):
    # AF_UNIX paths are length-limited (~108 bytes); tmp_path stays short
    # under pytest's default basetemp, but guard anyway.
    path = tmp_path / "slate.sock"
    assert len(str(path)) < 100, f"socket path too long: {path}"
    return str(path)


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestBasicLifecycle:
    def test_hello_launch_stats_bye(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            with SlateClient(sock_path, name="alice") as client:
                assert client.session == 1
                assert client.session_name == "alice#1"
                reply = client.launch("MM")
                assert reply.kernel == "MM"
                assert reply.sim_finished > reply.sim_submitted
                assert reply.sim_exec and reply.sim_exec > 0
                stats = client.stats()
                assert stats["session"]["launches"] == 1
                assert stats["server"]["sessions"] == 1
            assert _wait_until(lambda: server.session_count == 0)

    def test_register_compiles_once(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            with SlateClient(sock_path) as client:
                first = client.register("GS")
                again = client.register("GS")
                assert first["compile_time"] > 0
                assert again["compile_time"] == 0  # code cache hit

    def test_sync_waits_out_the_session(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            with SlateClient(sock_path) as client:
                client.launch("RG")
                out = client.sync()
                assert out["sim_time"] >= 0.0

    def test_sim_time_does_not_advance_while_idle(self, sock_path):
        """Wall-clock gaps between requests must not leak into sim time."""
        with ServerThread(ServeConfig(socket_path=sock_path)):
            with SlateClient(sock_path) as client:
                t1 = client.ping()["sim_time"]
                time.sleep(0.2)
                t2 = client.ping()["sim_time"]
                assert t2 == t1


class TestTypedErrors:
    def test_unknown_kernel_is_structured_not_fatal(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            with SlateClient(sock_path) as client:
                with pytest.raises(UnknownKernelError, match="BOGUS"):
                    client.launch("BOGUS")
                # The daemon survives and the session still works.
                assert client.launch("BS").kernel == "BS"
                assert client.stats()["session"]["errors"] == 1
            assert server.driver.sim_errors == 0

    def test_unknown_kernel_on_register(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            with SlateClient(sock_path) as client:
                with pytest.raises(UnknownKernelError):
                    client.register("NOPE")

    def test_version_mismatch_rejected(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock.settimeout(5.0)
            stream = MessageStream(sock)
            stream.send(request(1, "hello", version=PROTOCOL_VERSION + 1))
            reply = stream.recv()
            assert reply["ok"] is False
            assert reply["error"]["type"] == "VersionMismatch"
            sock.close()

    def test_op_before_hello_rejected(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock.settimeout(5.0)
            stream = MessageStream(sock)
            stream.send(request(1, "launch", kernel="MM"))
            reply = stream.recv()
            assert reply["ok"] is False
            assert reply["error"]["type"] == "SessionState"
            sock.close()

    def test_double_hello_rejected(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            client = SlateClient(sock_path)
            client.connect()
            with pytest.raises(SessionStateError):
                client._call("hello", version=PROTOCOL_VERSION)

    def test_malformed_frame_gets_error_reply(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock.settimeout(5.0)
            sock.sendall(b"\x00\x00\x00\x03{{{")
            stream = MessageStream(sock)
            reply = stream.recv()
            assert reply["ok"] is False
            assert reply["error"]["type"] == "FrameError"
            # The server drops the poisoned connection afterwards.
            assert sock.recv(1) == b""
            sock.close()
            assert _wait_until(lambda: server.session_count == 0)


class TestAdmissionControl:
    def test_global_backpressure(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path, max_inflight=0)):
            with SlateClient(sock_path) as client:
                with pytest.raises(ServerBusyError) as excinfo:
                    client.launch("BS")
                assert excinfo.value.retry_after > 0

    def test_per_session_backpressure(self, sock_path):
        with ServerThread(
            ServeConfig(socket_path=sock_path, session_inflight=0)
        ):
            with SlateClient(sock_path) as client:
                with pytest.raises(SessionLimitError):
                    client.launch("BS")

    def test_session_table_bound(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path, max_sessions=1)):
            with SlateClient(sock_path) as first:
                second = SlateClient(sock_path, connect_retries=0)
                with pytest.raises(ServerBusyError):
                    second.connect()
                assert first.ping()["pong"]

    def test_rejections_are_counted(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path, max_inflight=0)) as server:
            busy0 = server._m_busy.value
            with SlateClient(sock_path) as client:
                for _ in range(3):
                    with pytest.raises(ServerBusyError):
                        client.launch("BS")
            assert server._m_busy.value - busy0 == 3


class TestConcurrentSessions:
    N_CLIENTS = 8
    LAUNCHES = 4

    def test_many_clients_no_leaked_sessions(self, sock_path):
        """N clients connect/launch/disconnect concurrently; afterwards the
        daemon holds zero sessions and the scheduler is fully drained."""
        config = ServeConfig(socket_path=sock_path)
        kernels = ["BS", "GS", "MM", "RG", "TR"]
        errors: list[str] = []

        def one_client(i: int) -> None:
            try:
                with SlateClient(sock_path, name=f"c{i}") as client:
                    for j in range(self.LAUNCHES):
                        reply = client.launch(kernels[(i + j) % len(kernels)])
                        assert reply.sim_finished >= reply.sim_submitted
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"client {i}: {type(exc).__name__}: {exc}")

        with ServerThread(config) as server:
            # The metrics registry is process-wide: assert on deltas.
            launches0 = server._m_launches.value
            opened0 = server._m_opened.value
            reaped0 = server._m_reaped.value
            threads = [
                threading.Thread(target=one_client, args=(i,))
                for i in range(self.N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            assert _wait_until(lambda: server.session_count == 0)
            assert _wait_until(lambda: server.inflight == 0)
            sched = server.cluster.scheduler_stats()
            assert sched["waiting"] == 0 and sched["running"] == 0
            assert server._m_launches.value - launches0 == self.N_CLIENTS * self.LAUNCHES
            assert server._m_opened.value - opened0 == self.N_CLIENTS
            assert server._m_reaped.value - reaped0 == self.N_CLIENTS

    def test_concurrent_clients_actually_corun(self, sock_path):
        """Concurrent served clients co-run on the simulated GPU — the whole
        point of funneling into one scheduler."""
        barrier = threading.Barrier(4)

        def one_client(i: int) -> None:
            with SlateClient(sock_path, name=f"c{i}") as client:
                barrier.wait(timeout=30)
                for _ in range(6):
                    client.launch("BS" if i % 2 else "RG")

        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            threads = [threading.Thread(target=one_client, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert server.cluster.scheduler_stats()["corun_launches"] > 0

    def test_mid_flight_disconnect_reaps_after_drain(self, sock_path):
        """A client that fires a launch and vanishes must not leak its
        session or wedge the scheduler."""
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock.settimeout(5.0)
            stream = MessageStream(sock)
            stream.send(request(1, "hello", version=PROTOCOL_VERSION))
            assert stream.recv()["ok"]
            # Fire a launch and slam the connection without reading.
            stream.send(request(2, "launch", kernel="MM"))
            sock.close()
            assert _wait_until(lambda: server.session_count == 0), (
                f"leaked sessions: {server.session_count}"
            )
            assert server.inflight == 0
            sched = server.cluster.scheduler_stats()
            assert sched["waiting"] == 0 and sched["running"] == 0
            # The launch itself drained through the scheduler.
            assert sched["decisions"] >= 1

    def test_disconnect_without_bye_reaps(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            client = SlateClient(sock_path)
            client.connect()
            client.launch("BS")
            # Close the raw socket: no bye frame.
            client._stream.sock.close()
            assert _wait_until(lambda: server.session_count == 0)

    def test_multi_device_placement(self, sock_path):
        with ServerThread(
            ServeConfig(socket_path=sock_path, num_devices=2, placement="round-robin")
        ) as server:
            with SlateClient(sock_path) as a, SlateClient(sock_path) as b:
                a.launch("BS")
                b.launch("GS")
                devices = set(server.cluster.placements.values())
            assert devices == {0, 1}


class TestPlacementStaleness:
    """`serve.shard.*.placement_stale` tracks hint/observed class divergence."""

    @staticmethod
    def _stale_gauge(client, shard=0):
        gauges = client.metrics()["registry"]["gauges"]
        return gauges.get(f"serve.shard.{shard}.placement_stale", 0)

    def test_divergent_launches_flip_gauge_and_back(self, sock_path):
        # MM is class M_M, RG is L_C (offline profiles), so a session hinted
        # MM that launches RG has gone stale — until it launches MM again.
        with ServerThread(ServeConfig(socket_path=sock_path)):
            with SlateClient(sock_path, name="drift", kernel_hint="MM") as client:
                client.launch("MM")
                assert self._stale_gauge(client) == 0
                client.launch("RG")
                assert self._stale_gauge(client) == 1
                # Repeat launches of the divergent class don't double-count.
                client.launch("RG")
                assert self._stale_gauge(client) == 1
                client.launch("MM")
                assert self._stale_gauge(client) == 0

    def test_hintless_sessions_never_go_stale(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            with SlateClient(sock_path, name="nohint") as client:
                client.launch("RG")
                client.launch("MM")
                assert self._stale_gauge(client) == 0

    def test_reaping_a_stale_session_decrements(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)) as server:
            with SlateClient(sock_path, name="watcher") as watcher:
                leaver = SlateClient(sock_path, name="leaver", kernel_hint="MM")
                leaver.connect()
                leaver.launch("RG")
                assert self._stale_gauge(watcher) == 1
                # Drop the connection without a bye: the reaper must clear
                # the stale flag, not just the session row.
                leaver._stream.sock.close()
                assert _wait_until(lambda: server.session_count == 1)
                assert self._stale_gauge(watcher) == 0


class TestServerShutdown:
    def test_shutdown_with_connected_client(self, sock_path):
        thread = ServerThread(ServeConfig(socket_path=sock_path))
        server = thread.start()
        client = SlateClient(sock_path)
        client.connect()
        client.launch("RG")
        thread.stop()  # graceful: drains, cancels the open connection
        assert server.session_count == 0
        sched = server.cluster.scheduler_stats()
        assert sched["waiting"] == 0 and sched["running"] == 0

    def test_socket_removed_on_shutdown(self, sock_path):
        import os

        with ServerThread(ServeConfig(socket_path=sock_path)):
            assert os.path.exists(sock_path)
        assert not os.path.exists(sock_path)

    def test_duration_bounded_serve(self, sock_path):
        import asyncio

        from repro.serve.server import SlateServer

        server = SlateServer(
            ServeConfig(socket_path=sock_path, duration=0.2)
        )
        t0 = time.monotonic()
        asyncio.run(server.serve_forever())
        assert 0.1 < time.monotonic() - t0 < 10.0
