"""Dashboard tests: the pure renderer against canned feeds, and the
plain front end against a live daemon."""

import io

import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve.server import ServeConfig, ServerThread
from repro.serve.top import fetch_feed, render, run_top


@pytest.fixture
def sock_path(tmp_path):
    path = tmp_path / "slate.sock"
    assert len(str(path)) < 100
    return str(path)


def canned_feed():
    reg = MetricsRegistry()
    reg.counter("serve.launches").inc(42)
    reg.counter("obs.trace.dropped").inc(0)
    reg.counter("scheduler.rejections").inc(3)
    reg.gauge("monitor.covered_sms").set(14.0)
    h = reg.histogram("serve.latency.launch")
    for v in (0.001, 0.002, 0.004, 0.010):
        h.observe(v)
    return {
        "polled_at": 123.0,
        "metrics": {
            "registry": reg.export_state(),
            "proc_mode": True,
            "shard_count": 2,
            "sim_time": 7.5,
            "shards": {
                "0": {
                    "sessions": 2,
                    "inflight": 1,
                    "sim_time": 7.5,
                    "sim_skew": 0.0,
                    "scrape_age": 0.1,
                    "stats": {
                        "occupancy": {"covered_sms": 10, "num_sms": 15},
                        "scheduler": {"rejections": 3},
                    },
                },
                "1": {
                    "sessions": 1,
                    "inflight": 0,
                    "sim_time": 6.0,
                    "sim_skew": 1.5,
                    "scrape_age": 0.2,
                    # Proc-mode shape: occupancy nested in server stats.
                    "stats": {"shards": [{"occupancy": {"covered_sms": 0, "num_sms": 15}}]},
                },
            },
            "slo": {
                "alerts_fired": 1,
                "targets": [
                    {
                        "name": "launch-wall-p99",
                        "good_ratio": 0.97,
                        "burning": True,
                        "burn": {"120s": 1.0, "30s": 3.1},
                    }
                ],
            },
        },
        "stats": {"sessions": 3, "inflight": 1, "policy": "table1", "uptime": 9.0},
    }


class TestRender:
    def test_no_feed_frame(self):
        assert "no feed" in render(None)

    def test_full_frame_contents(self):
        text = render(canned_feed())
        assert "shards 2 (proc)" in text
        assert "policy table1" in text
        assert "launches 42" in text
        # Per-shard rows with occupancy from both stats shapes.
        assert "10/15 SM" in text
        assert "0/15 SM" in text
        assert "1.500" in text  # shard 1 sim skew
        # Latency percentiles from the bucketed histogram.
        assert "wall  launch: p50" in text
        assert "n=4" in text
        assert "sim   launch: (no samples)" in text
        # SLO block: windows sorted numerically (30s before 120s), flag set.
        assert "SLO (alerts fired: 1)" in text
        assert text.index("30s:3.10x") < text.index("120s:1.00x")
        assert "[BURNING]" in text
        # Telemetry health line.
        assert "trace-dropped 0" in text
        assert "admission-rejections 3" in text
        assert "monitor covered_sms 14.0" in text

    def test_width_clips_lines(self):
        text = render(canned_feed(), width=30)
        assert all(len(line) <= 30 for line in text.splitlines())

    def test_empty_metrics_renders_placeholders(self):
        text = render({"polled_at": 0.0, "metrics": {}, "stats": {}})
        assert "(no samples)" in text
        assert "repro top" in text


class TestLiveFeed:
    def test_fetch_feed_against_live_daemon(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            feed = fetch_feed(sock_path)
        assert feed is not None
        assert "registry" in feed["metrics"]
        assert "policy" in feed["stats"]
        # The sessionless poll consumed no session slot.
        assert feed["stats"]["sessions"] == 0

    def test_fetch_feed_unreachable_returns_none(self, tmp_path):
        assert fetch_feed(str(tmp_path / "nope.sock")) is None

    def test_run_top_plain_renders_one_frame(self, sock_path):
        out = io.StringIO()
        with ServerThread(ServeConfig(socket_path=sock_path)):
            code = run_top(sock_path, interval=0.0, iterations=1, plain=True, out=out)
        assert code == 0
        text = out.getvalue()
        assert "repro top" in text
        assert "SLO" in text
        assert text.strip().endswith("-" * 60)

    def test_run_top_plain_exit_code_without_daemon(self, tmp_path):
        out = io.StringIO()
        code = run_top(
            str(tmp_path / "nope.sock"),
            interval=0.0,
            iterations=2,
            plain=True,
            out=out,
        )
        assert code == 1
        assert out.getvalue().count("no feed") == 2
