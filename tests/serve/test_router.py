"""Router tests: placement invariants, determinism, affinity, draining,
sharded serving end-to-end (in-loop and shard-process modes).

The property tests pin the two contracts the sharding design leans on:
the router never co-locates classes the active policy's
``placement_compatible`` forbids while a compatible shard exists, and a
fixed arrival sequence always places identically.
"""

import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.client import SlateClient
from repro.serve.protocol import (
    BackpressureError,
    MessageStream,
    ProtocolError,
    ServerBusyError,
    ShardDrainingError,
    request,
)
from repro.serve.router import PlacementRouter
from repro.serve.server import ServeConfig, ServerThread
from repro.slate.classify import IntensityClass as C

CLASSES = list(C)


@pytest.fixture
def sock_path(tmp_path):
    path = tmp_path / "slate.sock"
    assert len(str(path)) < 100, f"socket path too long: {path}"
    return str(path)


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestPlacementProperties:
    @given(
        candidates=st.lists(st.sampled_from(CLASSES), min_size=1, max_size=24),
        num_shards=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_colocates_incompatible_when_avoidable(
        self, candidates, num_shards
    ):
        """Whenever some shard could take the candidate without a policy
        conflict, the chosen shard has no incompatible resident."""
        router = PlacementRouter(num_shards, placement="contention")
        policy = router.policy
        for i, candidate in enumerate(candidates):
            conflict_free = [
                book
                for book in router.shards
                if all(
                    policy.placement_compatible(resident, candidate)
                    for resident in book.residents.values()
                )
            ]
            name = f"s{i}"
            index = router.pick(name, candidate)
            if conflict_free:
                chosen = router.shards[index]
                assert all(
                    policy.placement_compatible(resident, candidate)
                    for resident in chosen.residents.values()
                ), (
                    f"placed {candidate} with incompatible residents "
                    f"{list(chosen.residents.values())} while shards "
                    f"{[b.index for b in conflict_free]} were conflict-free"
                )
            router.note_open(index, name, candidate)

    @given(
        candidates=st.lists(st.sampled_from(CLASSES), min_size=1, max_size=24),
        num_shards=st.integers(min_value=1, max_value=5),
        placement=st.sampled_from(["contention", "least-loaded", "round-robin"]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_sequences_place_identically(
        self, candidates, num_shards, placement, seed
    ):
        def run():
            router = PlacementRouter(num_shards, placement=placement, seed=seed)
            placements = []
            for i, candidate in enumerate(candidates):
                index = router.pick(f"s{i}", candidate)
                router.note_open(index, f"s{i}", candidate)
                placements.append(index)
            return placements

        assert run() == run()


class TestRouterUnit:
    def test_contention_separates_antagonists_and_colocates_friends(self):
        # MM-class (M_M) tenants must not share; RG-class (L_C) co-runs
        # with anyone under Table I.
        router = PlacementRouter(2, placement="contention")
        first = router.pick("a", C.M_M)
        router.note_open(first, "a", C.M_M)
        second = router.pick("b", C.M_M)
        router.note_open(second, "b", C.M_M)
        assert {first, second} == {0, 1}
        third = router.pick("c", C.L_C)
        assert third == first  # compatible: ties break toward shard 0
        router.note_open(third, "c", C.L_C)

    def test_affinity_sticks_sessions_to_one_shard(self):
        router = PlacementRouter(4, placement="least-loaded")
        a = router.pick("a", None, affinity="tenant-1")
        router.note_open(a, "a")
        # Different session, same key: lands with "a" although other
        # shards are emptier.
        b = router.pick("b", None, affinity="tenant-1")
        assert b == a
        c = router.pick("c", None, affinity="tenant-2")
        assert c != a

    def test_affinity_moves_off_draining_shard(self):
        router = PlacementRouter(2, placement="least-loaded")
        a = router.pick("a", None, affinity="k")
        router.note_open(a, "a")
        router.set_draining(a)
        b = router.pick("b", None, affinity="k")
        assert b != a

    def test_pin_validation(self):
        router = PlacementRouter(2)
        assert router.pick("a", None, pin=1) == 1
        with pytest.raises(ProtocolError):
            router.pick("b", None, pin=7)
        router.set_draining(1)
        with pytest.raises(ShardDrainingError):
            router.pick("c", None, pin=1)

    def test_all_draining_is_backpressure(self):
        router = PlacementRouter(2)
        router.set_draining(0)
        router.set_draining(1)
        with pytest.raises(ShardDrainingError):
            router.pick("a", None)

    def test_round_robin_skips_draining(self):
        router = PlacementRouter(3, placement="round-robin")
        router.set_draining(1)
        picks = [router.pick(f"s{i}", None) for i in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_rejects_unknown_placement_and_bad_shard_count(self):
        with pytest.raises(ValueError):
            PlacementRouter(2, placement="psychic")
        with pytest.raises(ValueError):
            PlacementRouter(0)

    def test_class_aware_is_contention_alias(self):
        assert PlacementRouter(2, placement="class-aware").placement == "contention"


class TestShardedServer:
    def test_sessions_spread_and_stats_report_shards(self, sock_path):
        config = ServeConfig(socket_path=sock_path, shards=3)
        with ServerThread(config) as server:
            clients = [
                SlateClient(sock_path, name=f"c{i}", kernel_hint="MM")
                for i in range(3)
            ]
            try:
                shards = set()
                for client in clients:
                    hello = client.connect()
                    assert hello["shard"] == client.shard
                    shards.add(client.shard)
                    assert client.launch("MM").kernel == "MM"
                # MM is M_M-class: antagonists spread one per shard.
                assert shards == {0, 1, 2}
                stats = clients[0].stats()["server"]
                assert stats["shard_count"] == 3
                assert len(stats["shards"]) == 3
                assert all(b["placed"] == 1 for b in stats["shards"])
            finally:
                for client in clients:
                    client.close()
            assert _wait_until(lambda: server.session_count == 0)

    def test_contention_colocates_corunnable_classes(self, sock_path):
        config = ServeConfig(socket_path=sock_path, shards=2, placement="contention")
        with ServerThread(config):
            with SlateClient(sock_path, name="mm1", kernel_hint="MM") as a, \
                    SlateClient(sock_path, name="mm2", kernel_hint="MM") as b, \
                    SlateClient(sock_path, name="rg", kernel_hint="RG") as c:
                assert {a.shard, b.shard} == {0, 1}
                # RG co-runs with MM under Table I: joins a busy shard
                # instead of forcing a third.
                assert c.shard in (a.shard, b.shard)

    def test_deterministic_routing_under_fixed_seed(self, sock_path, tmp_path):
        hints = ["MM", "RG", "BS", "TR", "GS", "MM"]

        def run(path):
            config = ServeConfig(socket_path=path, shards=3, router_seed=7)
            placements = []
            with ServerThread(config):
                for i, hint in enumerate(hints):
                    with SlateClient(path, name=f"c{i}", kernel_hint=hint) as cl:
                        placements.append(cl.shard)
            return placements

        first = run(sock_path)
        second = run(str(tmp_path / "slate2.sock"))
        assert first == second

    def test_session_affinity_over_the_wire(self, sock_path):
        config = ServeConfig(socket_path=sock_path, shards=4)
        with ServerThread(config):
            with SlateClient(sock_path, name="a", affinity="job-9") as a, \
                    SlateClient(sock_path, name="b", affinity="job-9") as b:
                assert a.shard == b.shard

    def test_v1_hello_still_accepted(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path, shards=2)):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock.settimeout(30.0)
            try:
                stream = MessageStream(sock)
                stream.send(request(1, "hello", version=1, name="legacy"))
                reply = stream.recv()
                assert reply["ok"], reply
                assert reply["result"]["session"] == 1
                stream.send(request(2, "launch", kernel="RG"))
                reply = stream.recv()
                assert reply["ok"], reply
                assert reply["result"]["kernel"] == "RG"
            finally:
                sock.close()


class TestShardDraining:
    def test_drain_completes_inflight_and_rejects_new_work(self, sock_path):
        config = ServeConfig(socket_path=sock_path, shards=2)
        with ServerThread(config) as server:
            with SlateClient(sock_path, name="pinned", shard=0) as client:
                errors = []
                completed = []
                drained = threading.Event()

                def hammer():
                    while not drained.is_set():
                        try:
                            completed.append(client.launch("RG"))
                        except BackpressureError as exc:
                            errors.append(exc)
                            return

                worker = threading.Thread(target=hammer)
                worker.start()
                _wait_until(lambda: len(completed) > 0)
                server.request_drain(0)
                worker.join(timeout=30.0)
                drained.set()
                assert not worker.is_alive()
                # In-flight launches completed; only the post-drain launch
                # was turned away, with typed backpressure.
                assert completed
                assert len(errors) == 1
                assert isinstance(errors[0], ShardDrainingError)
                # New sessions route around the drained shard.
                with SlateClient(sock_path, name="late") as late:
                    assert late.shard == 1
                    assert late.launch("RG").kernel == "RG"
                # Pinning to the drained shard is refused.
                refused = SlateClient(sock_path, name="pin0", shard=0)
                with pytest.raises(ShardDrainingError):
                    refused.connect()
            assert _wait_until(lambda: server.session_count == 0)


class TestAggregateAdmission:
    def test_global_cap_spans_shards(self, sock_path):
        config = ServeConfig(socket_path=sock_path, shards=2, max_inflight=0)
        with ServerThread(config):
            with SlateClient(sock_path, name="a", shard=0) as a, \
                    SlateClient(sock_path, name="b", shard=1) as b:
                for client in (a, b):
                    with pytest.raises(ServerBusyError):
                        client.launch("BS")

    def test_per_shard_cap_is_enforced(self, sock_path):
        config = ServeConfig(
            socket_path=sock_path, shards=2, max_inflight=256, shard_inflight=0
        )
        with ServerThread(config):
            with SlateClient(sock_path, name="a") as client:
                with pytest.raises(ServerBusyError) as excinfo:
                    client.launch("BS")
                assert "shard" in str(excinfo.value)

    def test_default_split_keeps_single_shard_behavior(self):
        assert ServeConfig(socket_path="x", max_inflight=256).shard_inflight_limit() == 256
        assert ServeConfig(
            socket_path="x", shards=4, max_inflight=256
        ).shard_inflight_limit() == 64
        assert ServeConfig(
            socket_path="x", shards=3, max_inflight=8
        ).shard_inflight_limit() == 3  # ceiling division


class TestShardProcesses:
    def test_redirect_proxy_and_load_spread(self, sock_path):
        config = ServeConfig(
            socket_path=sock_path,
            shards=2,
            shard_procs=True,
            preload_profiles=False,
        )
        with ServerThread(config) as server:
            # v2 clients follow the redirect to the shard daemon.
            with SlateClient(sock_path, name="v2a", kernel_hint="MM") as a:
                assert a.shard is not None
                assert a.launch("MM").kernel == "MM"
                with SlateClient(sock_path, name="v2b", kernel_hint="MM") as b:
                    assert {a.shard, b.shard} == {0, 1}
                    assert b.launch("MM").kernel == "MM"
            # v1 clients are proxied through the router transparently.
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock.settimeout(30.0)
            try:
                stream = MessageStream(sock)
                stream.send(request(1, "hello", version=1, name="legacy"))
                reply = stream.recv()
                assert reply["ok"], reply
                assert reply["result"]["session"] is not None
                stream.send(request(2, "launch", kernel="RG"))
                reply = stream.recv()
                assert reply["ok"], reply
                assert reply["result"]["kernel"] == "RG"
            finally:
                sock.close()
            assert all(proc.alive for proc in server.procs)
