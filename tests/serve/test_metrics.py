"""Telemetry-plane serving tests: the session-less ``metrics`` op, the
fleet view it returns, flight events over the wire, and the loadgen
client-side/server-side percentile cross-check."""

import pytest

from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace
from repro.obs.recorder import events_from_wire
from repro.obs.registry import Histogram, registry
from repro.serve.client import SlateClient
from repro.serve.loadgen import (
    LoadGenConfig,
    fetch_server_metrics,
    run_loadgen,
)
from repro.serve.server import ServeConfig, ServerThread


@pytest.fixture
def sock_path(tmp_path):
    path = tmp_path / "slate.sock"
    assert len(str(path)) < 100
    return str(path)


def hist_count(metrics, name):
    state = metrics["registry"]["histograms"].get(name)
    return state["count"] if state else 0


class TestMetricsOp:
    def test_sessionless_scrape_shape(self, sock_path):
        """The scrape needs no hello and reports the full fleet block."""
        with ServerThread(ServeConfig(socket_path=sock_path)):
            m = fetch_server_metrics(sock_path)
        assert m is not None
        assert {
            "registry", "shards", "sim_time", "wall", "slo",
            "protocol", "proc_mode", "shard_count",
        } <= set(m)
        assert m["proc_mode"] is False
        assert m["shard_count"] == 1
        assert {"counters", "gauges", "histograms"} <= set(m["registry"])
        names = {t["name"] for t in m["slo"]["targets"]}
        assert "launch-wall-p99" in names  # default targets installed

    def test_launches_land_in_counters_and_histograms(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path)):
            before = fetch_server_metrics(sock_path)
            with SlateClient(sock_path, name="m") as client:
                for _ in range(4):
                    client.launch("MM")
                after = client.metrics()  # same op via a live session
        counters = after["registry"]["counters"]
        delta = counters["serve.launches"] - before["registry"]["counters"].get(
            "serve.launches", 0
        )
        assert delta == 4
        for name in ("serve.latency.launch", "serve.sim_latency.launch"):
            assert hist_count(after, name) - hist_count(before, name) == 4

    def test_scrape_of_unreachable_socket_returns_none(self, tmp_path):
        assert fetch_server_metrics(str(tmp_path / "nope.sock")) is None

    def test_recent_without_recorder_is_empty(self, sock_path):
        obs_recorder.uninstall()
        with ServerThread(ServeConfig(socket_path=sock_path)):
            m = fetch_server_metrics(sock_path, recent=10)
        assert m["recent"] == []
        assert m["recorder"] is None

    def test_recent_flight_events_over_wire(self, sock_path):
        rec = obs_recorder.install(capacity=512)
        try:
            obs_trace.instant("unit.sentinel", 1.0, "p", "t")
            with ServerThread(
                ServeConfig(socket_path=sock_path, preload_profiles=False)
            ):
                m = fetch_server_metrics(sock_path, recent=500)
        finally:
            obs_recorder.uninstall()
            obs_trace.set_sink(None)
        assert m["recorder"]["capacity"] == 512
        assert m["recorder"]["size"] == len(rec)
        sink = events_from_wire(m["recent"])
        assert "unit.sentinel" in {e.name for e in sink.events}


class TestFleetView:
    def test_inloop_shards_report_occupancy_and_skew(self, sock_path):
        with ServerThread(ServeConfig(socket_path=sock_path, shards=2)):
            with SlateClient(sock_path, name="a") as client:
                client.launch("MM")
                m = client.metrics()
        assert set(m["shards"]) == {"0", "1"}
        for block in m["shards"].values():
            assert "sim_time" in block
            assert "sim_skew" in block
        gauges = m["registry"]["gauges"]
        assert "fleet.shard.0.sim_skew" in gauges
        assert "fleet.shard.1.sim_skew" in gauges

    def test_proc_fleet_merges_shard_registries(self, sock_path):
        """--shard-procs: the router scrapes each shard daemon and the
        merged fleet registry must count every shard's launches."""
        config = ServeConfig(
            socket_path=sock_path,
            shards=2,
            shard_procs=True,
            preload_profiles=False,
        )
        with ServerThread(config) as server:
            with SlateClient(sock_path, name="a", kernel_hint="MM") as a:
                with SlateClient(sock_path, name="b", kernel_hint="MM") as b:
                    assert {a.shard, b.shard} == {0, 1}
                    for _ in range(3):
                        a.launch("MM")
                        b.launch("RG")
                    # Poll until the router's 0.25s scrape cache has a
                    # fresh registry from every shard daemon.
                    import time

                    def scraped_launches(m, sid):
                        block = (m or {}).get("shards", {}).get(sid) or {}
                        reg = block.get("registry") or {}
                        return reg.get("counters", {}).get("serve.launches", 0)

                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        m = fetch_server_metrics(sock_path)
                        if all(scraped_launches(m, s) >= 3 for s in ("0", "1")):
                            break
                        time.sleep(0.1)
        assert m["proc_mode"] is True
        assert m["shard_count"] == 2
        # Both shards contributed: per-shard scrape blocks carry their
        # own registries and the merged counters cover all launches.
        assert m["registry"]["counters"]["serve.launches"] >= 6
        for sid in ("0", "1"):
            shard = m["shards"][sid]
            assert shard["registry"] is not None
            assert shard["registry"]["counters"]["serve.launches"] >= 3
        assert "serve.sim_latency.launch" in m["registry"]["histograms"]


class TestLoadgenCrossCheck:
    def test_server_side_percentiles_within_bucket_resolution(self, sock_path):
        """Satellite (a): client-observed sim percentiles must agree with
        the server's histogram within one log-bucket (GROWTH factor)."""
        registry().reset_metrics()
        with ServerThread(ServeConfig(socket_path=sock_path)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=2,
                    requests=12,
                    warmup=0,
                    processes=False,
                    seed=3,
                )
            )
        assert report.errors == 0
        assert report.server_launch_count == report.completed
        assert report.server_sim_latency_p50 is not None
        assert report.server_sim_latency_p99 is not None
        assert report.server_latency_p99 is not None
        bound = Histogram.GROWTH * (1 + 1e-9)
        for client_q, server_q in (
            (report.sim_latency_p50, report.server_sim_latency_p50),
            (report.sim_latency_p99, report.server_sim_latency_p99),
        ):
            assert server_q == pytest.approx(client_q, rel=bound - 1 + 0.01)

    def test_report_carries_the_scrape_and_formats_it(self, sock_path):
        registry().reset_metrics()
        with ServerThread(ServeConfig(socket_path=sock_path)):
            report = run_loadgen(
                LoadGenConfig(
                    socket_path=sock_path,
                    clients=1,
                    requests=5,
                    warmup=0,
                    processes=False,
                )
            )
        assert report.server_metrics is not None
        assert "server-side:" in report.format()
        body = report.to_dict()
        assert body["server_launch_count"] == 5
        # Per-shard registries duplicate the merged fleet view and are
        # elided from the JSON export (in-loop shards share the registry,
        # so theirs are None to begin with).
        for shard in body["server_metrics"]["shards"].values():
            assert shard.get("registry") in (None, "<elided>")
