"""Smoke tests: every example script runs end-to-end and says what it should.

Examples are documentation that executes; these tests keep them honest.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Solo baselines" in out
        assert "Slate" in out and "ANTT" in out
        # Slate's ANTT line reports the best (lowest) figure.
        antts = {}
        for line in out.splitlines():
            for rt in ("CUDA", "MPS", "Slate"):
                if line.strip().startswith(rt) and "ANTT" in line:
                    antts[rt] = float(line.split("ANTT")[1].split()[0])
        assert antts["Slate"] < antts["MPS"] < antts["CUDA"]

    def test_dynamic_resizing(self, capsys):
        out = run_example("dynamic_resizing.py", capsys)
        assert "GS shrinks" in out
        assert "GS grows" in out
        assert "progress carried over exactly" in out

    def test_kernel_transformation(self, capsys):
        out = run_example("kernel_transformation.py", capsys)
        assert "every user block executed exactly once" in out
        assert "stencil2d" in out

    def test_policy_explorer(self, capsys):
        out = run_example("policy_explorer.py", capsys)
        assert "corun" in out and "consecutive execution" in out
        assert "M_M" in out

    def test_multiprocess_sharing(self, capsys):
        out = run_example("multiprocess_sharing.py", capsys)
        assert "ANTT" in out and "STP" in out
        assert "Slate" in out

    def test_trace_replay(self, capsys):
        out = run_example("trace_replay.py", capsys, argv=["7"])
        assert "Arrival trace" in out
        assert "SM allocation timeline" in out

    def test_multi_gpu_cluster(self, capsys):
        out = run_example("multi_gpu_cluster.py", capsys)
        assert "class-aware" in out
        assert "GPU 0 tenants" in out

    def test_priority_preemption(self, capsys):
        out = run_example("priority_preemption.py", capsys)
        assert "priority preemption" in out
        assert "VIP latency" in out

    def test_every_example_has_a_smoke_test(self):
        """New examples must be added to this file."""
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py",
            "dynamic_resizing.py",
            "kernel_transformation.py",
            "policy_explorer.py",
            "multiprocess_sharing.py",
            "trace_replay.py",
            "multi_gpu_cluster.py",
            "priority_preemption.py",
        }
        assert scripts == covered
