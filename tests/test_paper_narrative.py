"""One integration test per step of the paper's Figure 2 methodology.

(a) CPU processes launch compute kernels through the Slate Runtime.
(b) The runtime funnels contexts and applies kernel transformation.
(c) The dispatcher creates a task queue and binds workers to SMs.
(d) The runtime selects complementary kernels to share resources.
(e) Slate monitors system state and dynamically adjusts kernel sizes.
"""

import pytest

from repro.kernels import blackscholes, quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime


@pytest.fixture(scope="module")
def fig2_run():
    """Run the canonical two-process scenario once; all steps assert on it."""
    env = Environment()
    runtime = SlateRuntime(env)
    bs, rg = blackscholes(), quasirandom()
    runtime.preload_profiles([bs, rg])
    tickets = {"bs": [], "rg": []}

    def app(env, key, spec, reps):
        session = runtime.create_session(key)
        for _ in range(reps):
            ticket = yield from session.launch(spec)
            yield from session.synchronize()
            tickets[key].append(ticket)
        session.close()

    pa = env.process(app(env, "bs", bs, 6))
    pb = env.process(app(env, "rg", rg, 6))
    env.run(until=pa & pb)
    return runtime, tickets


class TestFigure2Methodology:
    def test_a_processes_launch_through_runtime(self, fig2_run):
        runtime, tickets = fig2_run
        assert len(tickets["bs"]) == 6 and len(tickets["rg"]) == 6
        for ts in tickets.values():
            for t in ts:
                assert t.counters is not None
                assert t.started_at >= t.enqueued_at

    def test_b_context_funneling_and_transformation(self, fig2_run):
        runtime, _ = fig2_run
        # (i) one CUDA context serves both processes;
        assert runtime.server_context.alive
        # (ii) both kernels went through the injector exactly once.
        assert set(runtime.injected_sources) == {"BS", "RG"}
        for source in runtime.injected_sources.values():
            assert "atomicAdd(&slateIdx, SLATE_ITERS)" in source
            assert "sm_low" in source
        # Compiled once per kernel; the daemon's source cache short-circuits
        # the remaining 10 launches before NVRTC is even consulted.
        assert runtime.compiler.compile_count == 2

    def test_c_task_queue_and_worker_binding(self, fig2_run):
        runtime, tickets = fig2_run
        # Every launch carried a task size (the queue granularity) and the
        # executions were bound to bounded SM ranges.
        for ts in tickets.values():
            for t in ts:
                assert t.task_size == 10
        log = runtime.scheduler.allocation_log
        ranges = {rng for _, alloc in log for rng in alloc.values()}
        assert any(high - low + 1 < 30 for low, high in ranges)  # partitions

    def test_d_complementary_selection(self, fig2_run):
        runtime, _ = fig2_run
        # BS (M_M) + RG (L_C) is a corun cell: most launches co-scheduled.
        assert runtime.scheduler.corun_launches >= 5
        decisions = [d for _, d in runtime.scheduler.decisions]
        assert "corun" in decisions

    def test_e_dynamic_resizing(self, fig2_run):
        runtime, tickets = fig2_run
        # The monitor shrank the running kernel when the partner arrived
        # (and/or grew the survivor at the end).
        assert runtime.scheduler.resizes >= 1
        resized = [
            t for ts in tickets.values() for t in ts if t.counters.resizes > 0
        ]
        assert resized  # at least one execution was resized mid-flight

    def test_throughput_outcome(self, fig2_run):
        """The methodology's goal: both apps beat a serialized schedule."""
        runtime, tickets = fig2_run
        serial_estimate = sum(
            t.counters.elapsed for ts in tickets.values() for t in ts
        )
        finished = max(
            t.counters.end_time for ts in tickets.values() for t in ts
        )
        started = min(t.started_at for ts in tickets.values() for t in ts)
        assert finished - started < 0.8 * serial_estimate
