"""Arrival-trace workload tests (multi-app scenarios)."""

import pytest

from repro.workloads.trace import TraceEntry, generate_trace, replay_trace


class TestGenerate:
    def test_deterministic_per_seed(self):
        a = generate_trace(10, seed=42)
        b = generate_trace(10, seed=42)
        c = generate_trace(10, seed=43)
        assert [(e.arrival, e.app.name) for e in a] == [
            (e.arrival, e.app.name) for e in b
        ]
        assert [(e.arrival, e.app.name) for e in a] != [
            (e.arrival, e.app.name) for e in c
        ]

    def test_arrivals_monotone(self):
        trace = generate_trace(20, seed=1)
        arrivals = [e.arrival for e in trace]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_unique_app_names(self):
        trace = generate_trace(20, seed=2)
        names = [e.app.name for e in trace]
        assert len(set(names)) == len(names)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(0)
        with pytest.raises(ValueError):
            generate_trace(5, mean_interarrival=0)


class TestReplay:
    @pytest.mark.parametrize("runtime", ["CUDA", "MPS", "Slate"])
    def test_all_apps_complete(self, runtime):
        trace = generate_trace(4, reps=3, seed=7)
        results, _ = replay_trace(runtime, trace)
        assert len(results) == 4
        for entry in trace:
            result = results[entry.app.name]
            assert result.launches == 3
            assert result.start >= entry.arrival

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_trace("CUDA", [])

    def test_slate_queue_handles_burst(self):
        """Several simultaneous tenants: at most two corun, rest wait,
        everyone eventually finishes."""
        trace = generate_trace(6, mean_interarrival=1e-3, reps=3, seed=3)
        results, runtime = replay_trace("Slate", trace)
        assert len(results) == 6
        sched = runtime.scheduler
        assert sched.waiting_count == 0
        assert sched.running_count == 0
        # The mix contains complementary kernels; some corun happened.
        assert sched.corun_launches + sched.solo_launches >= 18

    def test_slate_not_worse_than_cuda_on_mixed_trace(self):
        trace = generate_trace(5, mean_interarrival=10e-3, reps=4, seed=11)
        cuda_results, _ = replay_trace("CUDA", trace)
        slate_results, _ = replay_trace("Slate", trace)
        cuda_makespan = max(r.end for r in cuda_results.values())
        slate_makespan = max(r.end for r in slate_results.values())
        assert slate_makespan < cuda_makespan * 1.05

    def test_memory_accounting_clean_after_trace(self):
        trace = generate_trace(4, reps=2, seed=5)
        _, runtime = replay_trace("Slate", trace)
        assert runtime.memory.used == 0


class TestBurstyTrace:
    def test_structure(self):
        from repro.workloads.trace import generate_bursty_trace

        trace = generate_bursty_trace(n_bursts=3, burst_size=4, seed=1)
        assert len(trace) == 12
        arrivals = [e.arrival for e in trace]
        assert arrivals == sorted(arrivals)
        # Bursts are separated by the gap: big jumps between groups.
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert sum(g > 20e-3 for g in gaps) == 2

    def test_validation(self):
        from repro.workloads.trace import generate_bursty_trace

        with pytest.raises(ValueError):
            generate_bursty_trace(0, 4)
        with pytest.raises(ValueError):
            generate_bursty_trace(2, 2, burst_gap=0)

    def test_burst_replays_under_slate(self):
        from repro.workloads.trace import generate_bursty_trace

        trace = generate_bursty_trace(2, 4, reps=2, seed=3)
        results, runtime = replay_trace("Slate", trace)
        assert len(results) == 8
        assert runtime.scheduler.waiting_count == 0


class TestHeavyTailedTrace:
    def test_mix_and_determinism(self):
        from repro.workloads.trace import generate_heavy_tailed_trace

        a = generate_heavy_tailed_trace(30, seed=5)
        b = generate_heavy_tailed_trace(30, seed=5)
        assert [(e.arrival, e.app.name, e.app.reps) for e in a] == [
            (e.arrival, e.app.name, e.app.reps) for e in b
        ]
        light = sum(e.app.name.startswith(("RG", "PF")) for e in a)
        assert 15 <= light <= 28  # ~70% light

    def test_validation(self):
        from repro.workloads.trace import generate_heavy_tailed_trace

        with pytest.raises(ValueError):
            generate_heavy_tailed_trace(5, light_fraction=1.5)

    def test_slate_beats_mps_on_heavy_tailed_mix(self):
        """The population the paper motivates: light riders beside heavy
        tenants -> workload-aware sharing wins end to end."""
        from repro.workloads.trace import generate_heavy_tailed_trace

        trace = generate_heavy_tailed_trace(6, mean_interarrival=8e-3, seed=9)
        mps_results, _ = replay_trace("MPS", trace)
        slate_results, _ = replay_trace("Slate", trace)
        mps_turnaround = sum(
            r.end - e.arrival for e, r in
            zip(trace, (mps_results[e.app.name] for e in trace))
        )
        slate_turnaround = sum(
            r.end - e.arrival for e, r in
            zip(trace, (slate_results[e.app.name] for e in trace))
        )
        assert slate_turnaround < mps_turnaround
