"""Unit tests for the application model (AppSpec/AppResult breakdowns)."""

import pytest

from repro.cuda import VanillaCudaRuntime
from repro.kernels import quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.workloads.app import AppResult, AppSpec, run_application


def run_app(runtime, app):
    env = runtime.env
    session = runtime.create_session(app.name)
    proc = env.process(run_application(env, session, app, runtime.costs))
    return env.run(until=proc)


class TestAppSpec:
    def test_effective_reps_defaults_to_kernel(self):
        spec = quasirandom(reps=7)
        app = AppSpec(name="a", kernel=spec)
        assert app.effective_reps == 7
        assert AppSpec(name="a", kernel=spec, reps=3).effective_reps == 3

    def test_frozen(self):
        import dataclasses

        app = AppSpec(name="a", kernel=quasirandom())
        with pytest.raises(dataclasses.FrozenInstanceError):
            app.reps = 5  # type: ignore[misc]


class TestBreakdowns:
    def test_time_components_sum_sensibly(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        app = AppSpec(name="rg", kernel=quasirandom(), reps=3)
        result = run_app(rt, app)
        assert isinstance(result, AppResult)
        # Components are each positive and bounded by the app time.
        parts = [
            result.setup_time,
            result.h2d_time,
            result.d2h_time,
            result.kernel_wall_time,
        ]
        assert all(p > 0 for p in parts)
        assert sum(parts) <= result.app_time + 1e-12
        assert result.host_time == pytest.approx(
            result.app_time - result.kernel_wall_time
        )

    def test_kernel_exec_vs_wall(self):
        """Wall time includes queueing/API costs; exec time is device-only."""
        env = Environment()
        rt = SlateRuntime(env)
        rt.preload_profiles([quasirandom()])
        app = AppSpec(name="rg", kernel=quasirandom(), reps=4)
        result = run_app(rt, app)
        assert 0 < result.kernel_exec_time <= result.kernel_wall_time
        assert result.launches == 4
        assert len(result.counters) == 4

    def test_counters_accumulate_per_launch(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        app = AppSpec(name="rg", kernel=quasirandom(num_blocks=960), reps=2)
        result = run_app(rt, app)
        for counters in result.counters:
            assert counters.blocks_executed == pytest.approx(960)

    def test_slate_breakdown_only_for_slate(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        result = run_app(rt, AppSpec(name="rg", kernel=quasirandom(), reps=1))
        assert result.comm_time == 0.0
        assert result.compile_time == 0.0

    def test_transfers_skippable(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        app = AppSpec(
            name="rg", kernel=quasirandom(), reps=1, include_transfers=False
        )
        result = run_app(rt, app)
        assert result.h2d_time == 0.0
        assert result.d2h_time == 0.0

    def test_task_size_override_reaches_slate(self):
        env = Environment()
        rt = SlateRuntime(env)
        rt.preload_profiles([quasirandom()])
        app = AppSpec(name="rg", kernel=quasirandom(), reps=1, task_size=25)
        result = run_app(rt, app)
        # 48000 blocks / 25 per task: the tail frac reflects the size; we
        # verify through the scheduler's last ticket instead.
        # (run_application keeps tickets in counters only, so assert via
        # the daemon's decision log.)
        assert result.launches == 1
