"""Streaming trace replay: O(in-flight) memory, same answers as batch."""

import pytest

from repro.kernels.registry import SHORT_NAMES
from repro.workloads.trace import (
    TraceEntry,
    generate_trace,
    iter_trace,
    replay_trace,
    replay_trace_stream,
)


class TestIterTrace:
    def test_deterministic_per_seed(self):
        a = [(e.arrival, e.app.name) for e in iter_trace(10, seed=42)]
        b = [(e.arrival, e.app.name) for e in iter_trace(10, seed=42)]
        c = [(e.arrival, e.app.name) for e in iter_trace(10, seed=43)]
        assert a == b
        assert a != c

    def test_lazy_generation(self):
        """Entries materialize only as the consumer advances."""
        gen = iter_trace(1_000_000, seed=0)
        first = next(gen)
        second = next(gen)
        assert first.arrival < second.arrival
        gen.close()  # never built the other 999,998

    def test_arrivals_strictly_increasing(self):
        arrivals = [e.arrival for e in iter_trace(200, seed=5)]
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(iter_trace(0))
        with pytest.raises(ValueError):
            list(iter_trace(5, mean_interarrival=0))


class TestReplayStream:
    @pytest.mark.parametrize("runtime_name", ["CUDA", "MPS", "Slate"])
    def test_matches_batch_replay(self, runtime_name):
        """Streaming a materialized trace gives the batch replay's answers."""
        trace = generate_trace(5, reps=3, seed=7)
        batch_results, _ = replay_trace(runtime_name, trace)
        sink = {}
        summary, _ = replay_trace_stream(
            runtime_name, iter(trace), results_sink=sink
        )
        assert summary.apps == 5
        assert set(sink) == set(batch_results)
        for name, batch in batch_results.items():
            assert sink[name].end == pytest.approx(batch.end, rel=1e-12)
            assert sink[name].launches == batch.launches
        assert summary.makespan == pytest.approx(
            max(r.end for r in batch_results.values()), rel=1e-12
        )

    def test_summary_folds_without_sink(self):
        trace = generate_trace(6, reps=2, seed=3)
        summary, runtime = replay_trace_stream("Slate", iter(trace))
        assert summary.apps == 6
        assert summary.launches == 12
        assert summary.mean_turnaround > 0
        assert summary.total_kernel_time > 0
        assert runtime.scheduler.waiting_count == 0

    def test_bounded_logs_with_full_decision_count(self):
        """log_limit bounds memory while decisions_total counts everything."""
        trace = generate_trace(8, mean_interarrival=1e-3, reps=3, seed=9)
        summary, runtime = replay_trace_stream(
            "Slate", iter(trace), log_limit=2, rate_trace_limit=2
        )
        sched = runtime.scheduler
        assert summary.apps == 8
        assert len(sched.decision_log) <= 2
        assert len(runtime.gpu.rate_trace) <= 2
        assert sched.decisions_total >= 8 * 3

    def test_cluster_streaming_replay(self):
        trace = generate_trace(6, mean_interarrival=1e-3, reps=2, seed=11)
        summary, cluster = replay_trace_stream(
            "Slate", iter(trace), num_devices=2, placement="class-aware"
        )
        assert summary.apps == 6
        assert len(cluster.placements) == 6
        assert set(cluster.placements.values()) <= {0, 1}
        totals = cluster.scheduler_stats()
        assert totals["solo_launches"] + totals["corun_launches"] == 12
        assert totals["waiting"] == 0 and totals["running"] == 0

    def test_cluster_requires_slate(self):
        with pytest.raises(ValueError):
            replay_trace_stream("MPS", iter_trace(2), num_devices=2)

    def test_empty_stream_finishes(self):
        summary, _ = replay_trace_stream("Slate", iter(()))
        assert summary.apps == 0
        assert summary.makespan == 0.0

    def test_long_stream_holds_only_inflight_state(self):
        """A 300-app stream replays without materializing the trace.

        Arrivals are paced below the service rate so in-flight tenants (and
        their simulated device allocations) stay bounded — the stream, not
        the device, is the thing under test.
        """
        summary, runtime = replay_trace_stream(
            "Slate",
            iter_trace(300, mean_interarrival=60e-3, reps=2, seed=1),
            preload_benchmarks=SHORT_NAMES,
            log_limit=16,
            rate_trace_limit=16,
        )
        assert summary.apps == 300
        assert summary.launches == 600
        assert len(runtime.scheduler.decision_log) <= 16
