"""Workload harness tests: solo/pair scenarios across the runtimes."""

import pytest

from repro.workloads import (
    AppSpec,
    all_pairings,
    app_for,
    make_runtime,
    pairing_label,
    run_pair,
    run_solo,
)
from repro.sim import Environment


class TestPairings:
    def test_fifteen_pairings(self):
        pairs = all_pairings()
        assert len(pairs) == 15
        assert ("BS", "BS") in pairs  # self pairings included
        assert ("BS", "TR") in pairs
        assert len(set(pairs)) == 15

    def test_labels(self):
        assert pairing_label(("BS", "RG")) == "BS-RG"


class TestRuntimeFactory:
    def test_known_runtimes(self):
        env = Environment()
        for name in ("CUDA", "MPS", "Slate"):
            rt = make_runtime(name, env)
            assert rt.name == name

    def test_unknown_runtime(self):
        with pytest.raises(KeyError, match="unknown runtime"):
            make_runtime("XLA", Environment())

    def test_app_for(self):
        app = app_for("BS", reps=3)
        assert app.kernel.name == "BS"
        assert app.effective_reps == 3
        default = app_for("BS")
        assert default.effective_reps == default.kernel.default_reps


class TestRunSolo:
    @pytest.mark.parametrize("runtime", ["CUDA", "MPS", "Slate"])
    def test_solo_produces_complete_result(self, runtime):
        result, rt = run_solo(runtime, app_for("RG", reps=3))
        assert result.launches == 3
        assert len(result.counters) == 3
        assert result.app_time > result.kernel_wall_time > 0
        assert result.kernel_exec_time > 0
        assert result.setup_time > 0
        assert result.h2d_time > 0 and result.d2h_time > 0

    def test_memory_freed_after_run(self):
        result, rt = run_solo("CUDA", app_for("BS", reps=1))
        assert rt.memory.used == 0

    def test_slate_breakdown_fields(self):
        result, rt = run_solo("Slate", app_for("GS", reps=2))
        assert result.comm_time > 0
        assert result.compile_time > 0
        # Comm is a few percent of app time (paper: ~4%).
        assert result.comm_time < 0.15 * result.app_time

    def test_transfers_can_be_disabled(self):
        app = AppSpec(name="RG", kernel=app_for("RG").kernel, reps=1, include_transfers=False)
        result, _ = run_solo("CUDA", app)
        assert result.h2d_time == 0.0 and result.d2h_time == 0.0


class TestRunPair:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="distinct names"):
            run_pair("CUDA", app_for("BS"), app_for("BS"))

    @pytest.mark.parametrize("runtime", ["CUDA", "MPS", "Slate"])
    def test_pair_returns_both_results(self, runtime):
        results, _ = run_pair(runtime, app_for("RG", reps=2), app_for("GS", name="GS", reps=2))
        assert set(results) == {"RG", "GS"}
        for r in results.values():
            assert r.launches == 2

    def test_pair_slower_than_solo(self):
        solo, _ = run_solo("CUDA", app_for("BS", reps=4))
        results, _ = run_pair(
            "CUDA", app_for("BS", reps=4), app_for("TR", name="TR", reps=4)
        )
        assert results["BS"].app_time > solo.app_time

    def test_slate_beats_mps_on_complementary_pair(self):
        """The headline: BS-RG under Slate vs MPS (paper: +30.55%)."""
        mps, _ = run_pair("MPS", app_for("BS"), app_for("RG"))
        slate, _ = run_pair("Slate", app_for("BS"), app_for("RG"))
        mps_total = sum(r.app_time for r in mps.values())
        slate_total = sum(r.app_time for r in slate.values())
        assert slate_total < 0.85 * mps_total

    def test_slate_runs_memory_pair_consecutively(self):
        _, rt = run_pair("Slate", app_for("BS"), app_for("TR"))
        assert rt.scheduler.corun_launches == 0

    def test_deterministic_repeat(self):
        r1, _ = run_pair("Slate", app_for("BS", reps=3), app_for("RG", reps=3))
        r2, _ = run_pair("Slate", app_for("BS", reps=3), app_for("RG", reps=3))
        assert r1["BS"].app_time == r2["BS"].app_time
        assert r1["RG"].app_time == r2["RG"].app_time


class TestRunMany:
    def test_three_apps_with_arrivals(self):
        from repro.workloads import run_many

        apps = [
            app_for("BS", name="bs", reps=3),
            app_for("RG", name="rg", reps=3),
            app_for("GS", name="gs", reps=3),
        ]
        results, runtime = run_many(
            "Slate", apps, arrivals=[0.0, 1e-3, 2e-3]
        )
        assert set(results) == {"bs", "rg", "gs"}
        assert results["rg"].start >= 1e-3
        assert results["gs"].start >= 2e-3
        assert runtime.scheduler.corun_launches >= 1

    def test_duplicate_names_rejected(self):
        from repro.workloads import run_many

        with pytest.raises(ValueError, match="unique"):
            run_many("CUDA", [app_for("BS"), app_for("BS")])

    def test_arrival_length_mismatch(self):
        from repro.workloads import run_many

        with pytest.raises(ValueError, match="arrivals"):
            run_many("CUDA", [app_for("BS")], arrivals=[0.0, 1.0])

    def test_single_app_equals_run_solo(self):
        from repro.workloads import run_many

        many, _ = run_many("CUDA", [app_for("RG", reps=2)])
        solo, _ = run_solo("CUDA", app_for("RG", reps=2))
        assert many["RG"].app_time == pytest.approx(solo.app_time)
