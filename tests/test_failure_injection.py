"""Failure-injection and edge-case tests across the stack."""

import pytest

from repro.config import CostModel, DeviceConfig, TITAN_XP
from repro.cuda import VanillaCudaRuntime
from repro.cuda.errors import CudaContextDestroyed, CudaOutOfMemory
from repro.kernels import quasirandom, synthetic
from repro.mps import MpsRuntime
from repro.sim import Environment, Interrupt
from repro.slate import SlateRuntime


class TestOutOfMemory:
    def test_cuda_oom_raises_into_app(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("greedy")

        def app(env):
            with pytest.raises(CudaOutOfMemory):
                yield from session.malloc(13 * 1024**3)  # > 12 GiB device
            yield env.timeout(0)

        env.run(until=env.process(app(env)))

    def test_two_slate_clients_exhaust_shared_context(self):
        """Funneled contexts share the device heap: the second big tenant
        fails where per-process contexts would each have succeeded."""
        env = Environment()
        rt = SlateRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env):
            yield from s1.malloc(8 * 1024**3)
            with pytest.raises(CudaOutOfMemory):
                yield from s2.malloc(8 * 1024**3)
            # First tenant frees; second can now allocate.
            s1.close()
            yield from s2.malloc(8 * 1024**3)

        env.run(until=env.process(app(env)))
        assert rt.memory.used == 8 * 1024**3

    def test_oom_message_reports_fragmentation(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")

        def app(env):
            yield from session.malloc(6 * 1024**3)
            try:
                yield from session.malloc(7 * 1024**3)
            except CudaOutOfMemory as exc:
                assert "largest extent" in str(exc)

        env.run(until=env.process(app(env)))


class TestUseAfterClose:
    def test_cuda_session_context_destroyed(self):
        env = Environment()
        rt = VanillaCudaRuntime(env)
        session = rt.create_session("app")
        session.close()

        def app(env):
            with pytest.raises(CudaContextDestroyed):
                yield from session.malloc(1024)
            yield env.timeout(0)

        env.run(until=env.process(app(env)))

    def test_double_close_is_idempotent(self):
        env = Environment()
        for rt in (VanillaCudaRuntime(env), MpsRuntime(env), SlateRuntime(env)):
            session = rt.create_session("app")
            session.close()
            session.close()  # no raise


class TestDegenerateWorkloads:
    def test_single_block_kernel(self):
        """The smallest possible kernel flows through every runtime."""
        spec = synthetic(0.001, 0.001, name="tiny", num_blocks=1)
        for runtime_cls in (VanillaCudaRuntime, MpsRuntime, SlateRuntime):
            env = Environment()
            rt = runtime_cls(env)
            if hasattr(rt, "preload_profiles"):
                rt.preload_profiles([spec])
            session = rt.create_session("app")

            def app(env):
                ticket = yield from session.launch(spec)
                yield from session.synchronize()
                return ticket

            ticket = env.run(until=env.process(app(env)))
            assert ticket.counters.blocks_executed == pytest.approx(1.0)

    def test_synchronize_with_nothing_pending(self):
        env = Environment()
        rt = SlateRuntime(env)
        session = rt.create_session("app")

        def app(env):
            yield from session.synchronize()
            return env.now

        t = env.run(until=env.process(app(env)))
        assert t == pytest.approx(rt.costs.pipe_roundtrip)

    def test_zero_sm_device_rejected(self):
        bad = DeviceConfig(num_sms=1)
        env = Environment()
        rt = SlateRuntime(env, device=bad)
        # min_share would exceed half the device: heuristic partition is
        # infeasible, but solo scheduling still works.
        spec = quasirandom(num_blocks=480)
        rt.preload_profiles([spec])
        session = rt.create_session("app")

        def app(env):
            yield from session.launch(spec)
            yield from session.synchronize()

        env.run(until=env.process(app(env)))


class TestInterruptedWorkloads:
    def test_app_process_interrupt_mid_kernel(self):
        """Killing an application process mid-launch leaves the device
        consistent (the kernel still drains; no double-completion)."""
        env = Environment()
        rt = SlateRuntime(env)
        spec = quasirandom(num_blocks=48_000)
        rt.preload_profiles([spec])
        session = rt.create_session("victim")

        def app(env):
            try:
                yield from session.launch(spec)
                yield from session.synchronize()
            except Interrupt:
                session.close()
                return "killed"
            return "finished"

        proc = env.process(app(env))

        def killer(env):
            yield env.timeout(1e-3)
            proc.interrupt("sigkill")

        env.process(killer(env))
        env.run()
        assert proc.value == "killed"
        assert rt.memory.used == 0  # close() freed everything

    def test_engine_survives_many_interrupts(self):
        env = Environment()
        survived = []

        def worker(env, idx):
            total = 0.0
            while total < 10:
                try:
                    yield env.timeout(1.0)
                    total += 1.0
                except Interrupt:
                    total += 0.25
            survived.append(idx)

        workers = [env.process(worker(env, i)) for i in range(5)]

        def chaos(env):
            for round_ in range(20):
                yield env.timeout(0.7)
                for w in workers:
                    if w.is_alive:
                        w.interrupt("chaos")

        env.process(chaos(env))
        env.run()
        assert sorted(survived) == [0, 1, 2, 3, 4]
