"""Priority / preemption (QoS extension) tests."""

import pytest

from repro.kernels import blackscholes, gaussian, quasirandom, transpose
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.workloads.harness import app_for, run_solo


def launch_app(env, rt, name, spec, reps=1, priority=0, delay=0.0):
    session = rt.create_session(name)

    def app(env):
        if delay:
            yield env.timeout(delay)
        tickets = []
        for _ in range(reps):
            ticket = yield from session.launch(spec, priority=priority)
            yield from session.synchronize()
            tickets.append(ticket)
        session.close()
        return tickets

    return env.process(app(env))


class TestPreemption:
    def test_vip_preempts_incompatible_tenant(self):
        """A high-priority BS arrival preempts a running TR (both memory
        intensive, policy says no corun); TR resumes and completes."""
        env = Environment()
        rt = SlateRuntime(env, enable_preemption=True)
        tr, bs = transpose(num_blocks=3_360_000), blackscholes()
        rt.preload_profiles([tr, bs])
        p_tr = launch_app(env, rt, "batch", tr)
        p_bs = launch_app(env, rt, "vip", bs, priority=10, delay=2e-3)
        env.run(until=p_tr & p_bs)
        assert rt.scheduler.preemptions == 1
        (tr_ticket,) = p_tr.value
        (bs_ticket,) = p_bs.value
        assert tr_ticket.preemptions == 1
        # All TR blocks still executed exactly once.
        assert tr_ticket.counters.blocks_executed == pytest.approx(3_360_000)
        # The VIP ran promptly instead of waiting for the long TR.
        assert bs_ticket.counters.end_time < tr_ticket.counters.end_time

    def test_vip_latency_near_solo(self):
        """Preemption keeps the VIP's turnaround close to its solo time."""
        solo, _ = run_solo("Slate", app_for("BS", reps=1))
        solo_kernel = solo.kernel_exec_time

        env = Environment()
        rt = SlateRuntime(env, enable_preemption=True)
        tr, bs = transpose(num_blocks=3_360_000), blackscholes()
        rt.preload_profiles([tr, bs])
        launch_app(env, rt, "batch", tr)
        p_bs = launch_app(env, rt, "vip", bs, priority=5, delay=2e-3)
        env.run(until=p_bs)
        (ticket,) = p_bs.value
        assert ticket.counters.elapsed < 1.25 * solo_kernel

    def test_compatible_vip_coruns_instead_of_preempting(self):
        """A VIP that complements the tenant shares instead of evicting."""
        env = Environment()
        rt = SlateRuntime(env, enable_preemption=True)
        bs, rg = blackscholes(num_blocks=240_000), quasirandom()
        rt.preload_profiles([bs, rg])
        launch_app(env, rt, "batch", bs)
        p_rg = launch_app(env, rt, "vip", rg, priority=10, delay=2e-3)
        env.run(until=p_rg)
        assert rt.scheduler.preemptions == 0
        assert rt.scheduler.corun_launches == 1

    def test_equal_priority_never_preempts(self):
        env = Environment()
        rt = SlateRuntime(env, enable_preemption=True)
        tr, bs = transpose(), blackscholes()
        rt.preload_profiles([tr, bs])
        p1 = launch_app(env, rt, "a", tr)
        p2 = launch_app(env, rt, "b", bs, delay=1e-3)
        env.run(until=p1 & p2)
        assert rt.scheduler.preemptions == 0

    def test_preemption_off_by_default(self):
        env = Environment()
        rt = SlateRuntime(env)
        tr, bs = transpose(), blackscholes()
        rt.preload_profiles([tr, bs])
        p1 = launch_app(env, rt, "a", tr)
        p2 = launch_app(env, rt, "b", bs, priority=99, delay=1e-3)
        env.run(until=p1 & p2)
        assert rt.scheduler.preemptions == 0

    def test_priority_orders_waiting_queue(self):
        """Among waiting tickets, higher priority launches first."""
        env = Environment()
        rt = SlateRuntime(env)  # no preemption: queueing only
        tr = transpose()
        gs = gaussian()
        bs = blackscholes()
        rt.preload_profiles([tr, gs, bs])
        launch_app(env, rt, "tenant", tr)
        p_low = launch_app(env, rt, "low", gs, priority=1, delay=1e-3)
        p_high = launch_app(env, rt, "high", bs, priority=9, delay=1.2e-3)
        env.run(until=p_low & p_high)
        (low_ticket,) = p_low.value
        (high_ticket,) = p_high.value
        assert high_ticket.started_at < low_ticket.started_at
