"""The indexed waiting queue: heap order must equal the old sort order.

The scheduler used to re-sort its waiting list on every submit; it now
keeps a priority heap keyed ``(-priority, seq)``.  Ticket sequence numbers
are unique, so heap drain order is *identical* to the stable sort — these
tests pin that equivalence, FIFO stability at scale, and that preemption
semantics survived the swap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, TITAN_XP
from repro.gpu.device import SimulatedGPU
from repro.kernels import blackscholes, quasirandom, transpose
from repro.sim import Environment
from repro.slate.profiler import offline_profile
from repro.slate.scheduler import SlateScheduler, SlateTicket, WaitingQueue


def make_scheduler(preload=()):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    sched = SlateScheduler(env, gpu, TITAN_XP, CostModel())
    for spec in preload:
        sched.profiles.put(spec.name, offline_profile(spec))
    return env, sched


def ticket(env, spec, priority=0):
    return SlateTicket(
        spec=spec,
        profile_key=spec.name,
        done=env.event(),
        enqueued_at=env.now,
        priority=priority,
    )


class TestWaitingQueue:
    def test_fifo_within_priority_across_10k_submits(self):
        """Equal-priority tickets drain in exact submission order."""
        env = Environment()
        spec = quasirandom()
        queue = WaitingQueue()
        tickets = [ticket(env, spec) for _ in range(10_000)]
        for t in tickets:
            queue.push(t)
        drained = [queue.pop() for _ in range(len(queue))]
        assert drained == tickets

    def test_priority_beats_arrival_order(self):
        env = Environment()
        spec = quasirandom()
        low = ticket(env, spec, priority=0)
        high = ticket(env, spec, priority=5)
        queue = WaitingQueue()
        queue.push(low)
        queue.push(high)
        assert queue.peek() is high
        assert queue.pop() is high
        assert queue.pop() is low

    def test_iteration_is_nondestructive_and_sorted(self):
        env = Environment()
        spec = quasirandom()
        tickets = [ticket(env, spec, priority=p) for p in (1, 3, 2)]
        queue = WaitingQueue()
        for t in tickets:
            queue.push(t)
        seen = list(queue)
        assert [t.priority for t in seen] == [3, 2, 1]
        assert len(queue) == 3  # iteration drained nothing

    def test_empty_queue_semantics(self):
        queue = WaitingQueue()
        assert not queue
        assert len(queue) == 0
        with pytest.raises(IndexError):
            queue.peek()
        with pytest.raises(IndexError):
            queue.pop()

    @given(
        priorities=st.lists(
            st.integers(min_value=-3, max_value=3), min_size=0, max_size=200
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_heap_order_equals_stable_sort_order(self, priorities):
        """Property: drain order == the pre-PR ``sort(key=(-prio, seq))``."""
        env = Environment()
        spec = quasirandom()
        tickets = [ticket(env, spec, priority=p) for p in priorities]
        queue = WaitingQueue()
        for t in tickets:
            queue.push(t)
        expected = sorted(tickets, key=lambda t: (-t.priority, t.seq))
        assert [queue.pop() for _ in range(len(queue))] == expected


class TestSchedulerIntegration:
    def test_waiting_list_attribute_is_gone(self):
        """The unindexed list must not silently come back."""
        _, sched = make_scheduler()
        assert not hasattr(sched, "_waiting")
        assert isinstance(sched.waiting, WaitingQueue)

    def test_submit_order_preserved_under_contention(self):
        """Serialized tenants (all memory-heavy) run strictly FIFO."""
        bs, tr = blackscholes(), transpose()
        env, sched = make_scheduler(preload=[bs, tr])
        tickets = [
            ticket(env, spec)
            for spec in (bs, tr, bs, tr, bs, tr)
        ]
        for t in tickets:
            sched.submit(t)
        env.run()
        starts = [t.started_at for t in tickets]
        assert starts == sorted(starts)
        assert sched.corun_launches == 0

    def test_high_priority_preempts_and_queue_order_unchanged(self):
        """Preemption picks the highest-priority waiter, as before."""
        bs, tr = blackscholes(), transpose()
        env, sched = make_scheduler(preload=[bs, tr])
        sched.enable_preemption = True
        victim = ticket(env, bs)
        sched.submit(victim)
        env.run(until=1e-4)
        urgent = ticket(env, tr, priority=3)
        sched.submit(urgent)
        env.run(until=2e-4)
        assert sched.preemptions == 1
        assert urgent.started_at is not None
        env.run()

    def test_decisions_total_counts_every_decision(self):
        rg = quasirandom()
        env, sched = make_scheduler(preload=[rg])
        tickets = [ticket(env, rg) for _ in range(5)]
        for t in tickets:
            sched.submit(t)
        env.run()
        assert sched.decisions_total >= 5
        assert sched.solo_launches + sched.corun_launches == 5
