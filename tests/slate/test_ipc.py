"""IPC channel unit tests (named pipe + shared buffers)."""

import pytest

from repro.config import CostModel
from repro.sim import Environment
from repro.slate.ipc import NamedPipe, SharedBufferChannel


class TestNamedPipe:
    def test_round_trip_cost_and_counters(self):
        env = Environment()
        costs = CostModel(pipe_roundtrip=1e-4)
        pipe = NamedPipe(env, costs)

        def proc(env):
            for _ in range(3):
                yield from pipe.command()

        env.run(until=env.process(proc(env)))
        assert env.now == pytest.approx(3e-4)
        assert pipe.round_trips == 3
        assert pipe.total_time == pytest.approx(3e-4)


class TestSharedBuffer:
    def test_cost_independent_of_payload(self):
        """The whole point of the channel: no per-byte copy cost."""
        env = Environment()
        costs = CostModel(shared_buffer_overhead=5e-5)
        chan = SharedBufferChannel(env, costs)
        times = []

        def proc(env):
            for nbytes in (1 << 10, 1 << 30):
                t0 = env.now
                yield from chan.handoff(nbytes)
                times.append(env.now - t0)

        env.run(until=env.process(proc(env)))
        assert times[0] == pytest.approx(times[1])
        assert chan.handoffs == 2
        assert chan.bytes_handled == (1 << 10) + (1 << 30)

    def test_negative_size_rejected(self):
        env = Environment()
        chan = SharedBufferChannel(env, CostModel())
        with pytest.raises(ValueError):
            list(chan.handoff(-1))
