"""IPC channel unit tests (named pipe + shared buffers)."""

import pytest

from repro.config import CostModel
from repro.sim import Environment
from repro.slate.ipc import NamedPipe, SharedBufferChannel


class TestNamedPipe:
    def test_round_trip_cost_and_counters(self):
        env = Environment()
        costs = CostModel(pipe_roundtrip=1e-4)
        pipe = NamedPipe(env, costs)

        def proc(env):
            for _ in range(3):
                yield from pipe.command()

        env.run(until=env.process(proc(env)))
        assert env.now == pytest.approx(3e-4)
        assert pipe.round_trips == 3
        assert pipe.total_time == pytest.approx(3e-4)


class TestSharedBuffer:
    def test_cost_independent_of_payload(self):
        """The whole point of the channel: no per-byte copy cost."""
        env = Environment()
        costs = CostModel(shared_buffer_overhead=5e-5)
        chan = SharedBufferChannel(env, costs)
        times = []

        def proc(env):
            for nbytes in (1 << 10, 1 << 30):
                t0 = env.now
                yield from chan.handoff(nbytes)
                times.append(env.now - t0)

        env.run(until=env.process(proc(env)))
        assert times[0] == pytest.approx(times[1])
        assert chan.handoffs == 2
        assert chan.bytes_handled == (1 << 10) + (1 << 30)

    def test_negative_size_rejected(self):
        env = Environment()
        chan = SharedBufferChannel(env, CostModel())
        with pytest.raises(ValueError):
            list(chan.handoff(-1))


class TestRegistryMirroring:
    """The per-instance counters are mirrored into the process-wide
    metrics registry so IPC overhead shows up in ``repro obs dump``."""

    def test_pipe_counters_mirror_to_registry(self):
        from repro.obs.registry import registry

        reg = registry()
        trips0 = reg.counter("ipc.pipe.round_trips").value
        time0 = reg.gauge("ipc.pipe.time_total").value

        env = Environment()
        costs = CostModel(pipe_roundtrip=1e-4)
        pipe = NamedPipe(env, costs)

        def proc(env):
            for _ in range(5):
                yield from pipe.command()

        env.run(until=env.process(proc(env)))
        assert reg.counter("ipc.pipe.round_trips").value - trips0 == 5
        assert reg.gauge("ipc.pipe.time_total").value - time0 == pytest.approx(5e-4)

    def test_shared_buffer_counters_mirror_to_registry(self):
        from repro.obs.registry import registry

        reg = registry()
        maps0 = reg.counter("ipc.shared_buffer.mappings").value
        bytes0 = reg.gauge("ipc.shared_buffer.bytes_total").value

        env = Environment()
        chan = SharedBufferChannel(env, CostModel(shared_buffer_overhead=1e-5))

        def proc(env):
            yield from chan.handoff(1 << 20)
            yield from chan.handoff(1 << 10)

        env.run(until=env.process(proc(env)))
        assert reg.counter("ipc.shared_buffer.mappings").value - maps0 == 2
        assert reg.gauge("ipc.shared_buffer.bytes_total").value - bytes0 == (
            (1 << 20) + (1 << 10)
        )
