"""Mechanism invariants every scheduling policy must uphold.

The policy interface deliberately lets a policy reorder, pair, split,
reject, and preempt — but the *mechanism* guarantees stay fixed no matter
how adversarial the policy's choices are.  Each test here runs against
every name in :data:`repro.slate.policy.POLICIES` (new policies are
covered automatically):

* SM grants never exceed device capacity, never overlap between
  co-running tenants, and never exceed ``max_corun`` residents
  (asserted at every allocation change, not just at the end);
* every submitted launch is eventually resolved — completed or
  explicitly rejected at admission; nothing starves in the queue;
* preempted tenants resume and still complete;
* ``edf`` never admits a launch whose deadline its runtime estimate
  already proves infeasible at submit time.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, TITAN_XP
from repro.gpu.device import SimulatedGPU
from repro.kernels.registry import by_name
from repro.sim import Environment
from repro.slate.policy import POLICIES, policy_names
from repro.slate.profiler import ProfileTable, offline_profile
from repro.slate.scheduler import SlateScheduler, SlateTicket

from tests.slate.difftrace import BENCHES

ALL_POLICIES = policy_names()


class AuditingScheduler(SlateScheduler):
    """Asserts the mechanism invariants at every allocation change."""

    def _log_allocation(self) -> None:
        assert len(self._running) <= self.max_corun, "max_corun exceeded"
        granted: set[int] = set()
        for entry in self._running:
            sms = set(entry.sms)
            assert sms, f"{entry.ticket.spec.name} running with zero SMs"
            assert all(0 <= s < self.device.num_sms for s in sms), (
                f"{entry.ticket.spec.name} granted out-of-range SM ids"
            )
            assert not (granted & sms), "overlapping SM grants"
            granted |= sms
        assert len(granted) <= self.device.num_sms, "device capacity exceeded"
        super()._log_allocation()


def run_workload(
    policy: str,
    workload,
    enable_preemption: bool = False,
    max_corun: int = 2,
):
    """Drive an :class:`AuditingScheduler` through ``workload``.

    ``workload`` entries are ``(arrival, bench, priority, deadline)``;
    returns ``(scheduler, tickets)`` after the run fully drains.
    """
    env = Environment()
    costs = CostModel()
    gpu = SimulatedGPU(env, TITAN_XP, costs)
    profiles = ProfileTable(TITAN_XP)
    specs = {}
    for _, bench, _, _ in workload:
        if bench not in specs:
            specs[bench] = by_name(bench)
            profiles.put(specs[bench].name, offline_profile(specs[bench], TITAN_XP, costs))
    sched = AuditingScheduler(
        env,
        gpu,
        TITAN_XP,
        costs,
        profiles=profiles,
        enable_preemption=enable_preemption,
        max_corun=max_corun,
        policy=policy,
    )
    tickets = []

    def arrival(env, at, spec, priority, deadline):
        if at > env.now:
            yield env.timeout(at - env.now)
        ticket = SlateTicket(
            spec=spec,
            profile_key=spec.name,
            done=env.event(),
            enqueued_at=env.now,
            priority=priority,
            task_size=10,
            deadline=deadline,
        )
        tickets.append(ticket)
        sched.submit(ticket)

    procs = [
        env.process(arrival(env, at, specs[bench], priority, deadline))
        for at, bench, priority, deadline in sorted(workload, key=lambda w: w[0])
    ]
    env.run(until=env.all_of(procs))
    env.run()
    return sched, tickets


MIXED = [
    (0.0, "BS", 0, None),
    (0.2e-3, "RG", 1, None),
    (0.5e-3, "TR", 0, 40e-3),
    (0.9e-3, "MM", 2, None),
    (1.4e-3, "GS", 1, 1e-4),  # infeasibly tight: edf must reject it
    (2.2e-3, "BS", 2, None),
    (3.0e-3, "RG", 0, 60e-3),
    (5.5e-3, "TR", 1, None),
]


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_mixed_workload_upholds_invariants(policy):
    sched, tickets = run_workload(policy, MIXED, max_corun=3)
    assert sched.waiting_count == 0 and sched.running_count == 0
    for t in tickets:
        assert t.done.triggered, f"{t.spec.name} starved under {policy}"
        assert t.done.ok or t.rejected


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_preempted_tenants_resume_and_complete(policy):
    workload = [
        (0.0, "TR", 0, None),
        # Same-class VIP: Table I forbids the corun, so serving the
        # priority-3 arrival requires preempting the priority-0 tenant.
        (0.4e-3, "TR", 3, None),
        (4.0e-3, "BS", 1, None),
    ]
    sched, tickets = run_workload(policy, workload, enable_preemption=True)
    assert sched.waiting_count == 0 and sched.running_count == 0
    for t in tickets:
        assert t.done.triggered
        if t.preemptions:
            assert t.done.ok, f"preempted {t.spec.name} never resumed under {policy}"
    if policy == "table1":
        # The canonical policy does preempt here — the scenario has teeth.
        assert sched.preemptions > 0
        assert any(t.preemptions for t in tickets)


def test_edf_never_admits_provably_infeasible_deadlines():
    sched, tickets = run_workload("edf", MIXED, max_corun=3)
    assert sched.rejections > 0
    for t in tickets:
        if t.deadline is None:
            continue
        estimate = sched.profiles.get(t.profile_key).elapsed
        if t.enqueued_at + estimate > t.deadline:
            assert t.rejected, (
                f"edf admitted {t.spec.name} with deadline {t.deadline} "
                f"< submit {t.enqueued_at} + estimate {estimate}"
            )


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_non_deadline_policies_reject_nothing(policy):
    sched, tickets = run_workload(policy, MIXED, max_corun=3)
    if policy == "edf":
        assert sched.rejections == sum(t.rejected for t in tickets) > 0
    else:
        assert sched.rejections == 0
        assert not any(t.rejected for t in tickets)


# -- property-based: generated workloads, every policy -----------------------

entry = st.tuples(
    st.floats(min_value=0.0, max_value=10e-3, allow_nan=False),
    st.sampled_from(BENCHES),
    st.integers(min_value=0, max_value=3),
    st.one_of(st.none(), st.floats(min_value=1e-4, max_value=50e-3)),
)
workloads = st.lists(entry, min_size=1, max_size=8)


@pytest.mark.parametrize("policy", ALL_POLICIES)
@given(workload=workloads)
@settings(max_examples=20, deadline=None)
def test_generated_workloads_drain_within_capacity(policy, workload):
    sched, tickets = run_workload(policy, workload, max_corun=3)
    assert sched.waiting_count == 0 and sched.running_count == 0
    assert len(tickets) == len(workload)
    for t in tickets:
        assert t.done.triggered
        assert t.done.ok or t.rejected
    completed = sum(1 for t in tickets if t.done.ok)
    assert completed == sched.solo_launches + sched.corun_launches


def test_registry_is_complete():
    """Every policy in POLICIES is constructible and keeps its name."""
    from repro.slate.policy import make_policy

    assert len(POLICIES) >= 5
    for name in ALL_POLICIES:
        assert make_policy(name).name == name
