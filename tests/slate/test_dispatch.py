"""Dispatch-kernel (Listing 3) facade tests."""

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.device import SimulatedGPU
from repro.kernels import gaussian, quasirandom
from repro.sim import Environment
from repro.slate.dispatch import DispatchKernel


def make_dispatch(spec=None, sms=range(0, 30)):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    dk = DispatchKernel(gpu, spec or quasirandom(num_blocks=9600), sms)
    return env, gpu, dk


class TestDispatchLoop:
    def test_initial_launch_recorded(self):
        env, gpu, dk = make_dispatch(sms=range(0, 12))
        assert dk.relaunches == 0
        rec = dk.records[0]
        assert (rec.sm_low, rec.sm_high) == (0, 11)
        assert rec.slate_idx == 0.0
        assert rec.workers == dk.execution.blocks_per_sm * 12

    def test_completion_without_resize(self):
        env, gpu, dk = make_dispatch()
        env.run(until=dk.done)
        assert dk.slate_idx == pytest.approx(dk.slate_max)
        assert dk.relaunches == 0
        # All final workers persisted (exit condition 2).
        assert dk.exit_conditions.persisted == dk.records[-1].workers
        assert dk.exit_conditions.retreated == 0

    def test_adjust_carries_slate_idx(self):
        env, gpu, dk = make_dispatch(spec=quasirandom(num_blocks=96_000))

        def adjuster(env):
            yield env.timeout(1e-3)
            yield dk.adjust_sm_range(range(0, 10))

        env.process(adjuster(env))
        env.run(until=dk.done)
        assert dk.relaunches == 1
        second = dk.records[1]
        assert 0 < second.slate_idx < dk.slate_max
        assert (second.sm_low, second.sm_high) == (0, 9)
        # Progress conserved.
        assert dk.execution.counters.blocks_executed == pytest.approx(96_000)

    def test_exit_conditions_tally(self):
        env, gpu, dk = make_dispatch(spec=quasirandom(num_blocks=96_000), sms=range(0, 20))

        def adjuster(env):
            yield env.timeout(1e-3)
            yield dk.adjust_sm_range(range(0, 30))

        env.process(adjuster(env))
        env.run(until=dk.done)
        ec = dk.exit_conditions
        # (1) first launch left 10 SMs' worth of blocks unguarded.
        assert ec.wrong_sm >= dk.execution.blocks_per_sm * 10
        # (3) the first worker set retreated; (2) the second persisted.
        assert ec.retreated == dk.records[0].workers
        assert ec.persisted == dk.records[1].workers

    def test_adjust_after_done_is_noop(self):
        env, gpu, dk = make_dispatch()
        env.run(until=dk.done)
        ev = dk.adjust_sm_range(range(0, 5))
        assert ev.triggered
        assert dk.relaunches == 0
