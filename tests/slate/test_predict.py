"""Tests for the predictive partitioner."""

import pytest

from repro.kernels import blackscholes, gaussian, quasirandom, transpose
from repro.slate.partition import MIN_SHARE
from repro.slate.predict import choose_partition_predictive, predict_corun_rates


class TestPredictRates:
    def test_rates_positive(self):
        ra, rb = predict_corun_rates(blackscholes(), quasirandom(), 12)
        assert ra > 0 and rb > 0

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            predict_corun_rates(blackscholes(), quasirandom(), 0)
        with pytest.raises(ValueError):
            predict_corun_rates(blackscholes(), quasirandom(), 29)

    def test_bs_rate_saturates_beyond_knee(self):
        """Above ~its saturation count, BS gains nothing from more SMs."""
        bs, rg = blackscholes(), quasirandom()
        at_12, _ = predict_corun_rates(bs, rg, 12)
        at_20, _ = predict_corun_rates(bs, rg, 20)
        assert at_20 < at_12 * 1.12

    def test_rg_scales_with_its_share(self):
        bs, rg = blackscholes(), quasirandom()
        _, rg_small = predict_corun_rates(bs, rg, 26)  # RG gets 4
        _, rg_big = predict_corun_rates(bs, rg, 10)  # RG gets 20
        assert rg_big > 3 * rg_small


class TestChoosePredictive:
    def test_split_covers_device(self):
        split = choose_partition_predictive(blackscholes(), quasirandom())
        assert split.n_a + split.n_b == 30
        assert split.n_a >= MIN_SHARE and split.n_b >= MIN_SHARE

    def test_bs_rg_gives_bs_its_saturation_share(self):
        split = choose_partition_predictive(blackscholes(), quasirandom())
        # BS saturates around 10-14 SMs; RG should get the majority.
        assert 8 <= split.n_a <= 16
        assert split.n_b > split.n_a

    def test_predicted_stp_beats_time_slicing(self):
        """For a complementary pair, predicted STP must exceed 1.0."""
        split = choose_partition_predictive(blackscholes(), quasirandom())
        assert split.predicted_stp > 1.3

    def test_linear_pair_has_flat_stp(self):
        """Two linearly-scaling kernels: corun STP ~ 1 at any split."""
        split = choose_partition_predictive(quasirandom(), quasirandom())
        assert split.predicted_stp == pytest.approx(1.0, abs=0.1)

    def test_partition_object(self):
        split = choose_partition_predictive(blackscholes(), quasirandom())
        part = split.partition_for_a_primary()
        assert len(part.primary_sms) == split.n_a
        assert set(part.primary_sms) & set(part.secondary_sms) == set()

    def test_memory_pair_low_stp(self):
        """Two memory hogs predict poorly (the policy's solo rationale)."""
        split = choose_partition_predictive(gaussian(), transpose())
        assert split.predicted_stp < 1.15


class TestPredictionErrorBounds:
    """The analytic rate model vs the simulated GPU, on synthetic pairs.

    ``choose_partition_predictive`` is only useful if its predicted system
    throughput tracks what the simulation actually delivers; these bounds
    are what lets the online-predictive policy trust it for admission and
    resplitting.
    """

    @staticmethod
    def _measured_stp(a: str, b: str) -> float:
        from repro.metrics.antt import stp
        from repro.workloads.harness import app_for, run_pair, run_solo

        solo = {
            name: run_solo("CUDA", app_for(bench, name=name))[0].app_time
            for name, bench in ((a, a), (b + "2", b))
        }
        results, _ = run_pair(
            "Slate",
            app_for(a),
            app_for(b, name=b + "2"),
            partition_strategy="predictive",
        )
        return stp({k: v.app_time for k, v in results.items()}, solo)

    @pytest.mark.parametrize(
        "pair,bound",
        [
            (("BS", "RG"), 0.05),  # complementary: the model's home turf
            (("RG", "RG"), 0.05),  # linear pair: STP ~ 1 on both sides
            (("BS", "TR"), 0.25),  # interfering: host costs dilute, stay sane
        ],
        ids=["BS-RG", "RG-RG", "BS-TR"],
    )
    def test_predicted_stp_tracks_simulation(self, pair, bound):
        from repro.workloads.harness import app_for

        a, b = pair
        split = choose_partition_predictive(app_for(a).kernel, app_for(b).kernel)
        measured = self._measured_stp(a, b)
        assert abs(split.predicted_stp - measured) / measured <= bound

    def test_rates_sum_is_split_invariant_for_linear_kernels(self):
        """A linearly-scaling kernel pair: total predicted rate is nearly
        constant across splits (the model has no free-lunch splits)."""
        rg = quasirandom()
        totals = [
            sum(predict_corun_rates(rg, rg, n_a)) for n_a in (6, 10, 15, 20, 24)
        ]
        assert max(totals) <= min(totals) * 1.05


class TestOnlinePredictivePolicy:
    """The policy layer riding on predict.py: estimation and fallback."""

    def test_ema_runtime_estimation(self):
        from types import SimpleNamespace

        from repro.slate.policy import make_policy

        policy = make_policy("online-predictive")
        ticket = SimpleNamespace(profile_key="k")
        policy.on_complete(ticket, SimpleNamespace(elapsed=2.0))
        assert policy.observed["k"] == (2.0, 1)  # first sample taken verbatim
        policy.on_complete(ticket, SimpleNamespace(elapsed=4.0))
        ema, count = policy.observed["k"]
        assert count == 2 and ema == pytest.approx(3.0)  # 0.5-weighted EMA
        assert policy.observations(ticket) == 2

    def test_falls_back_to_table1_with_no_completions(self):
        """Until the first completion there is no evidence; decisions must
        be byte-identical to table1 (the pairing below happens before any
        kernel finishes)."""
        from tests.slate.difftrace import scheduler_trace
        from repro.slate.scheduler import SlateScheduler, SlateTicket

        workload = [(0.0, "RG", 0, None), (0.1e-3, "RG", 0, None)]
        predictive, sched = scheduler_trace(
            workload, SlateScheduler, SlateTicket, policy="online-predictive"
        )
        table1, _ = scheduler_trace(workload, SlateScheduler, SlateTicket)
        assert predictive == table1
        assert sched.policy.repairings == 0
        assert any(row[1] == "corun" for row in predictive)

    def test_diverges_from_table1_once_evidence_arrives(self):
        """Table I co-runs L_C with itself; the rate model predicts STP ~ 1
        for the linear pair, so once both arrivals have observed runtimes
        the policy refuses the pairing table1 would have made."""
        from tests.slate.difftrace import scheduler_trace
        from repro.slate.scheduler import SlateScheduler, SlateTicket

        workload = [
            (0.0, "RG", 0, None),
            (0.1e-3, "RG", 0, None),
            # Second wave arrives after the first completions.
            (60e-3, "RG", 0, None),
            (60.1e-3, "RG", 0, None),
        ]
        predictive, sched = scheduler_trace(
            workload, SlateScheduler, SlateTicket, policy="online-predictive"
        )
        table1, _ = scheduler_trace(workload, SlateScheduler, SlateTicket)
        assert predictive != table1
        assert sched.policy.repairings > 0
        # The second wave ran solo under the predictive policy...
        assert sum(row[1] == "corun" for row in predictive) < sum(
            row[1] == "corun" for row in table1
        )
