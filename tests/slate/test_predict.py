"""Tests for the predictive partitioner."""

import pytest

from repro.kernels import blackscholes, gaussian, quasirandom, transpose
from repro.slate.partition import MIN_SHARE
from repro.slate.predict import choose_partition_predictive, predict_corun_rates


class TestPredictRates:
    def test_rates_positive(self):
        ra, rb = predict_corun_rates(blackscholes(), quasirandom(), 12)
        assert ra > 0 and rb > 0

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            predict_corun_rates(blackscholes(), quasirandom(), 0)
        with pytest.raises(ValueError):
            predict_corun_rates(blackscholes(), quasirandom(), 29)

    def test_bs_rate_saturates_beyond_knee(self):
        """Above ~its saturation count, BS gains nothing from more SMs."""
        bs, rg = blackscholes(), quasirandom()
        at_12, _ = predict_corun_rates(bs, rg, 12)
        at_20, _ = predict_corun_rates(bs, rg, 20)
        assert at_20 < at_12 * 1.12

    def test_rg_scales_with_its_share(self):
        bs, rg = blackscholes(), quasirandom()
        _, rg_small = predict_corun_rates(bs, rg, 26)  # RG gets 4
        _, rg_big = predict_corun_rates(bs, rg, 10)  # RG gets 20
        assert rg_big > 3 * rg_small


class TestChoosePredictive:
    def test_split_covers_device(self):
        split = choose_partition_predictive(blackscholes(), quasirandom())
        assert split.n_a + split.n_b == 30
        assert split.n_a >= MIN_SHARE and split.n_b >= MIN_SHARE

    def test_bs_rg_gives_bs_its_saturation_share(self):
        split = choose_partition_predictive(blackscholes(), quasirandom())
        # BS saturates around 10-14 SMs; RG should get the majority.
        assert 8 <= split.n_a <= 16
        assert split.n_b > split.n_a

    def test_predicted_stp_beats_time_slicing(self):
        """For a complementary pair, predicted STP must exceed 1.0."""
        split = choose_partition_predictive(blackscholes(), quasirandom())
        assert split.predicted_stp > 1.3

    def test_linear_pair_has_flat_stp(self):
        """Two linearly-scaling kernels: corun STP ~ 1 at any split."""
        split = choose_partition_predictive(quasirandom(), quasirandom())
        assert split.predicted_stp == pytest.approx(1.0, abs=0.1)

    def test_partition_object(self):
        split = choose_partition_predictive(blackscholes(), quasirandom())
        part = split.partition_for_a_primary()
        assert len(part.primary_sms) == split.n_a
        assert set(part.primary_sms) & set(part.secondary_sms) == set()

    def test_memory_pair_low_stp(self):
        """Two memory hogs predict poorly (the policy's solo rationale)."""
        split = choose_partition_predictive(gaussian(), transpose())
        assert split.predicted_stp < 1.15
