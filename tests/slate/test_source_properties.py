"""Property-based tests for the scanner/injector on generated sources."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slate.source import inject, inject_static, scan_kernels

identifier = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)

builtin = st.sampled_from(
    ["blockIdx.x", "blockIdx.y", "gridDim.x", "gridDim.y", "threadIdx.x", "blockDim.x"]
)


@st.composite
def kernel_source(draw):
    """A syntactically plausible __global__ kernel with random body refs."""
    name = draw(identifier)
    n_stmts = draw(st.integers(min_value=1, max_value=6))
    stmts = []
    for i in range(n_stmts):
        var = draw(identifier)
        ref = draw(builtin)
        stmts.append(f"  int {var}_{i} = {ref} * {draw(st.integers(0, 99))};")
    use_branch = draw(st.booleans())
    body = "\n".join(stmts)
    if use_branch:
        body = f"  if (p[0] > 0) {{\n{body}\n  }}"
    text = f"__global__ void {name}(float* p, int n)\n{{\n{body}\n}}\n"
    return name, text


@given(data=kernel_source())
@settings(max_examples=120)
def test_scanner_finds_generated_kernels(data):
    name, text = data
    kernels = scan_kernels(text)
    assert [k.name for k in kernels] == [name]
    # builtins_used only lists grid builtins actually present.
    for b in kernels[0].builtins_used:
        assert b in text


@given(data=kernel_source())
@settings(max_examples=120)
def test_injection_removes_all_grid_builtins(data):
    name, text = data
    kernel = scan_kernels(text)[0]
    out = inject(kernel)
    # Strip Slate's own replacements before checking.
    cleaned = (
        out.replace("slate_blockID", "")
        .replace("slate_gridDim_x", "")
        .replace("slate_gridDim_y", "")
    )
    for b in ("blockIdx.x", "blockIdx.y", "gridDim.x", "gridDim.y"):
        assert b not in cleaned
    # Thread-level builtins survive (inner block geometry preserved).
    if "threadIdx.x" in kernel.body:
        assert "threadIdx.x" in out
    # The transformed kernel is renamed and takes the SM bounds first.
    assert f"{name}_slate(const uint sm_low, const uint sm_high" in out


@given(data=kernel_source())
@settings(max_examples=60)
def test_static_injection_roundtrip(data):
    name, text = data
    annotated = f"#pragma slate transform\n{text}"
    out = inject_static(annotated)
    assert f"{name}_slate" in out
    assert "#pragma slate" not in out
    # Re-scanning the output finds exactly one (transformed) kernel.
    rescanned = scan_kernels(out)
    assert [k.name for k in rescanned] == [f"{name}_slate"]


@given(
    data=kernel_source(),
    host_code=st.from_regex(r"[a-z ={};0-9\n]{0,80}", fullmatch=True),
)
@settings(max_examples=60)
def test_surrounding_host_code_untouched_by_static_injection(data, host_code):
    name, text = data
    source = f"{host_code}\n{text}"
    out = inject_static(source)  # no pragmas: identity
    assert out == source
