"""Semantic-preservation tests for the grid transformation (§III-A).

The invariant: under ANY grid, task size, worker count, and resize
schedule, the persistent workers execute exactly the user's blocks, each
once, in queue order — with 2D coordinates reconstructed by the
increment/rollover arithmetic of Listing 2.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.kernel import GridDim
from repro.slate.taskqueue import SlateQueue, TaskQueueConfigError
from repro.slate.transform import GridTransform, simulate_workers


class TestSlateQueue:
    def test_pull_sequence(self):
        q = SlateQueue(num_blocks=25, task_size=10)
        assert q.pull().block_range == range(0, 10)
        assert q.pull().block_range == range(10, 20)
        last = q.pull()
        assert last.start == 20 and last.count == 5  # clamped (Listing 2)
        assert q.pull() is None
        assert q.pulls == 3

    def test_remaining_accounting(self):
        q = SlateQueue(num_blocks=25, task_size=10)
        assert q.remaining_blocks == 25 and q.remaining_tasks == 3
        q.pull()
        assert q.remaining_blocks == 15 and q.remaining_tasks == 2

    def test_retreat_flag(self):
        q = SlateQueue(10, 2)
        q.signal_retreat()
        assert q.retreat
        q.clear_retreat()
        assert not q.retreat

    def test_validation(self):
        with pytest.raises(ValueError):
            SlateQueue(0, 1)
        with pytest.raises(ValueError):
            SlateQueue(10, 0)

    def test_degenerate_configs_typed(self):
        # The typed error subclasses ValueError (backwards compatible).
        with pytest.raises(TaskQueueConfigError):
            SlateQueue(0, 1)
        with pytest.raises(TaskQueueConfigError):
            SlateQueue(-3, 10)
        with pytest.raises(TaskQueueConfigError):
            SlateQueue(10, -1)

    def test_task_size_larger_than_grid_is_one_clamped_task(self):
        # Defined behaviour, not an error: a single pull clamped to the grid.
        q = SlateQueue(num_blocks=7, task_size=100)
        task = q.pull()
        assert task.start == 0 and task.count == 7
        assert q.pull() is None
        assert q.pulls == 1

    def test_pull_after_retreat_returns_none(self):
        q = SlateQueue(num_blocks=10, task_size=2)
        assert q.pull() is not None
        q.signal_retreat()
        # Retreating workers must exit, not claim one more task.
        assert q.pull() is None
        assert q.remaining_blocks == 8  # nothing was silently consumed
        q.clear_retreat()
        assert q.pull().block_range == range(2, 4)

    def test_retreat_counts_mirrored_to_registry(self):
        from repro.obs.registry import registry

        reg = registry()
        retreats = reg.counter("taskqueue.retreats").value
        clears = reg.counter("taskqueue.clears").value
        q = SlateQueue(10, 2)
        q.signal_retreat()
        q.clear_retreat()
        q.signal_retreat()
        assert reg.counter("taskqueue.retreats").value == retreats + 2
        assert reg.counter("taskqueue.clears").value == clears + 1


class TestGridTransform:
    def test_1d_task_coords(self):
        t = GridTransform(GridDim(100))
        q = SlateQueue(100, 7)
        coords = t.task_block_coords(q.pull())
        assert coords == [(i, 0) for i in range(7)]

    def test_2d_rollover_mid_task(self):
        t = GridTransform(GridDim(4, 3))
        q = SlateQueue(12, 5)
        first = t.task_block_coords(q.pull())
        # Blocks 0..4: row 0 then rolls into row 1.
        assert first == [(0, 0), (1, 0), (2, 0), (3, 0), (0, 1)]
        second = t.task_block_coords(q.pull())
        assert second == [(1, 1), (2, 1), (3, 1), (0, 2), (1, 2)]

    def test_enumeration_matches_grid(self):
        t = GridTransform(GridDim(5, 4))
        assert t.enumerate_all() == [(i % 5, i // 5) for i in range(20)]


class TestSimulateWorkers:
    def test_single_epoch_covers_grid_in_order(self):
        traces = simulate_workers(GridDim(6, 3), task_size=4, worker_schedule=[2])
        blocks = [b for tr in traces for b in tr.blocks]
        assert sorted(blocks) == sorted(GridTransform(GridDim(6, 3)).enumerate_all())

    def test_resize_carries_progress_exactly(self):
        traces = simulate_workers(GridDim(10, 10), task_size=3, worker_schedule=[4, 7, 2])
        blocks = [b for tr in traces for b in tr.blocks]
        assert len(blocks) == 100
        assert set(blocks) == set(GridTransform(GridDim(10, 10)).enumerate_all())

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_workers(GridDim(4), 1, [])
        with pytest.raises(ValueError):
            simulate_workers(GridDim(4), 1, [0])


@st.composite
def grid_and_schedule(draw):
    gx = draw(st.integers(min_value=1, max_value=40))
    gy = draw(st.integers(min_value=1, max_value=20))
    task = draw(st.integers(min_value=1, max_value=17))
    epochs = draw(
        st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=5)
    )
    return GridDim(gx, gy), task, epochs


@given(args=grid_and_schedule())
@settings(max_examples=200)
def test_every_block_executed_exactly_once(args):
    """THE paper invariant: semantics preserved across resizing."""
    grid, task_size, schedule = args
    traces = simulate_workers(grid, task_size, schedule)
    blocks = [b for tr in traces for b in tr.blocks]
    expected = GridTransform(grid).enumerate_all()
    assert len(blocks) == grid.num_blocks  # no duplicates, no losses
    assert set(blocks) == set(expected)


@given(args=grid_and_schedule())
@settings(max_examples=100)
def test_blocks_execute_in_global_queue_order(args):
    """Tasks are claimed in order; concatenating per-pull coords in pull
    order must equal the row-major enumeration (the locality property)."""
    grid, task_size, _ = args
    t = GridTransform(grid)
    q = SlateQueue(grid.num_blocks, task_size)
    in_pull_order = []
    while (task := q.pull()) is not None:
        in_pull_order.extend(t.task_block_coords(task))
    assert in_pull_order == t.enumerate_all()


@given(
    gx=st.integers(min_value=1, max_value=50),
    gy=st.integers(min_value=1, max_value=20),
    task=st.integers(min_value=1, max_value=25),
)
def test_reconstruction_avoids_per_block_division(gx, gy, task):
    """The rollover arithmetic equals div/mod reconstruction everywhere."""
    grid = GridDim(gx, gy)
    t = GridTransform(grid)
    q = SlateQueue(grid.num_blocks, task)
    while (tk := q.pull()) is not None:
        coords = t.task_block_coords(tk)
        for offset, (bx, by) in enumerate(coords):
            linear = tk.start + offset
            assert (bx, by) == (linear % gx, linear // gx)


@given(args=grid_and_schedule())
@settings(max_examples=100)
def test_epoch_progress_is_contiguous(args):
    """Each epoch resumes exactly where the previous stopped: sorting all
    executed blocks by (epoch, pull order) yields the row-major sequence."""
    grid, task_size, schedule = args
    traces = simulate_workers(grid, task_size, schedule)
    transform = GridTransform(grid)
    # Interleave per-epoch worker traces in round-robin pull order: within
    # one epoch, workers pulled tasks in worker-id order each round.
    ordered: list[tuple[int, int]] = []
    for epoch in range(len(schedule)):
        epoch_traces = [t for t in traces if t.epoch == epoch]
        cursors = [0] * len(epoch_traces)
        progressed = True
        while progressed:
            progressed = False
            for i, tr in enumerate(epoch_traces):
                chunk = tr.blocks[cursors[i] : cursors[i] + task_size]
                if chunk:
                    ordered.extend(chunk)
                    cursors[i] += len(chunk)
                    progressed = True
    assert ordered == transform.enumerate_all()


@given(
    gx=st.integers(min_value=1, max_value=30),
    gy=st.integers(min_value=1, max_value=10),
    task=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=80)
def test_single_worker_executes_strictly_in_order(gx, gy, task):
    """One persistent worker is a serial queue: perfect row-major order."""
    grid = GridDim(gx, gy)
    traces = simulate_workers(grid, task, worker_schedule=[1])
    assert traces[0].blocks == GridTransform(grid).enumerate_all()
