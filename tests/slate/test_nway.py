"""N-way co-residency tests (max_corun extension)."""

import pytest

from repro.kernels import blackscholes, pathfinder, quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.workloads.app import AppSpec, run_application


def run_trio(max_corun, reps=4):
    """BS (saturating) + two light riders (RG, PF) arriving in order."""
    env = Environment()
    rt = SlateRuntime(env, max_corun=max_corun)
    apps = [
        AppSpec(name="bs", kernel=blackscholes(), reps=reps),
        AppSpec(name="rg", kernel=quasirandom(), reps=reps),
        AppSpec(name="pf", kernel=pathfinder(), reps=reps),
    ]
    rt.preload_profiles([a.kernel for a in apps])
    procs = []
    for i, app in enumerate(apps):
        def staged(env, app=app, delay=i * 5e-4):
            yield env.timeout(delay)
            session = rt.create_session(app.name)
            result = yield from run_application(env, session, app, rt.costs)
            return result

        procs.append(env.process(staged(env)))
    env.run(until=env.all_of(procs))
    return {p.value.name: p.value for p in procs}, rt


class TestThreeWay:
    def test_three_tenants_coresident(self):
        results, rt = run_trio(max_corun=3)
        log = rt.scheduler.allocation_log
        assert any(len(alloc) == 3 for _, alloc in log)
        # Disjoint SM assignments whenever three are resident.
        for _, alloc in log:
            if len(alloc) == 3:
                ranges = sorted(alloc.values())
                for (l1, h1), (l2, h2) in zip(ranges, ranges[1:]):
                    assert h1 < l2

    def test_default_caps_at_two(self):
        _, rt = run_trio(max_corun=2)
        assert all(
            len(alloc) <= 2 for _, alloc in rt.scheduler.allocation_log
        )

    def test_three_way_helps_light_riders(self):
        """With two light kernels beside BS, 3-way finishes the trio
        faster than pair-at-a-time scheduling."""
        two, _ = run_trio(max_corun=2)
        three, _ = run_trio(max_corun=3)
        makespan_two = max(r.end for r in two.values())
        makespan_three = max(r.end for r in three.values())
        assert makespan_three < makespan_two * 1.02

    def test_primary_keeps_saturation_share(self):
        results, rt = run_trio(max_corun=3)
        # In every 3-tenant snapshot, BS holds >= 10 SMs (its knee).
        for _, alloc in rt.scheduler.allocation_log:
            if len(alloc) == 3 and "BS" in alloc:
                low, high = alloc["BS"]
                assert high - low + 1 >= 10

    def test_survivors_rebalance_after_completion(self):
        """When one of three tenants finishes, the remaining two claim
        the freed SMs (total coverage returns to 30)."""
        results, rt = run_trio(max_corun=3)
        log = rt.scheduler.allocation_log
        saw_three = False
        rebalanced = False
        for _, alloc in log:
            if len(alloc) == 3:
                saw_three = True
            if saw_three and len(alloc) == 2:
                covered = sum(h - l + 1 for l, h in alloc.values())
                if covered == 30:
                    rebalanced = True
        assert rebalanced

    def test_blocks_conserved_across_nway_resizes(self):
        results, _ = run_trio(max_corun=3)
        for name, result in results.items():
            for counters in result.counters:
                expected = {
                    "bs": blackscholes().grid.num_blocks,
                    "rg": quasirandom().grid.num_blocks,
                    "pf": pathfinder().grid.num_blocks,
                }[name]
                assert counters.blocks_executed == pytest.approx(expected)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SlateRuntime(env, max_corun=0)
