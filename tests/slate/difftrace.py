"""Shared decision-trace capture for the differential policy harness.

The tentpole refactor moves every scheduling choice behind the
``SchedulingPolicy`` interface; the proof obligation is that the default
``table1`` policy is *decision-for-decision identical* to the seed
scheduler.  This module is the common ground both sides stand on:

* :func:`scheduler_trace` drives any scheduler class (the live
  ``SlateScheduler`` or the frozen seed copy in ``_seed_scheduler.py``)
  through an arrival workload and returns its full decision trace;
* :func:`fig4_trace` / :func:`tab1_trace` capture the daemon-level traces
  of the two canonical paper workloads (goldens live in
  ``tests/slate/goldens/``);
* :func:`rows_from` normalizes ``Decision`` records into plain tuples so
  traces can be compared byte-exact and round-tripped through JSON.

Workload entries are ``(arrival, bench, priority, deadline)`` tuples;
``deadline`` is carried only if the ticket dataclass has the field, so the
same workloads replay against the pre-refactor seed scheduler unchanged.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.config import CostModel, TITAN_XP
from repro.gpu.device import SimulatedGPU
from repro.kernels.registry import by_name
from repro.sim import Environment
from repro.slate.profiler import ProfileTable, offline_profile

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The benchmark mix the randomized differential traces draw from.
BENCHES = ("BS", "GS", "MM", "RG", "TR")


def rows_from(decisions) -> list:
    """Normalize a decision log into comparable, JSON-stable rows."""
    return [
        [d.time, d.kind, d.kernel, list(d.classes), d.sms, d.reason]
        for d in decisions
    ]


def _make_ticket(ticket_cls, env, spec, priority, deadline, task_size):
    kwargs = dict(
        spec=spec,
        profile_key=spec.name,
        done=env.event(),
        enqueued_at=env.now,
        priority=priority,
        task_size=task_size,
    )
    field_names = {f.name for f in dataclasses.fields(ticket_cls)}
    if deadline is not None and "deadline" in field_names:
        kwargs["deadline"] = deadline
    return ticket_cls(**kwargs)


def scheduler_trace(
    workload,
    scheduler_cls,
    ticket_cls,
    preload: bool = True,
    enable_preemption: bool = False,
    max_corun: int = 2,
    partition_strategy: str = "heuristic",
    task_size: int = 10,
    **scheduler_kwargs,
):
    """Replay ``workload`` through a scheduler; return (rows, scheduler).

    ``workload`` is a sequence of ``(arrival, bench, priority, deadline)``
    tuples (``bench`` is a registry short name).  Profiles are preloaded
    offline unless ``preload=False`` (which exercises the first-run
    profiling path).  The run always drains: the returned trace covers
    every submitted launch.
    """
    env = Environment()
    costs = CostModel()
    gpu = SimulatedGPU(env, TITAN_XP, costs)
    profiles = ProfileTable(TITAN_XP)
    specs = {}
    for _, bench, _, _ in workload:
        if bench not in specs:
            specs[bench] = by_name(bench)
    if preload:
        for bench, spec in specs.items():
            profiles.put(spec.name, offline_profile(spec, TITAN_XP, costs))
    sched = scheduler_cls(
        env,
        gpu,
        TITAN_XP,
        costs,
        profiles=profiles,
        enable_preemption=enable_preemption,
        max_corun=max_corun,
        partition_strategy=partition_strategy,
        **scheduler_kwargs,
    )
    tickets = []

    def arrival(env, at, spec, priority, deadline):
        if at > env.now:
            yield env.timeout(at - env.now)
        ticket = _make_ticket(ticket_cls, env, spec, priority, deadline, task_size)
        tickets.append(ticket)
        sched.submit(ticket)

    procs = [
        env.process(arrival(env, at, specs[bench], priority, deadline))
        for at, bench, priority, deadline in sorted(workload, key=lambda w: w[0])
    ]
    env.run(until=env.all_of(procs))
    env.run()
    return rows_from(sched.decision_log), sched


def fig4_trace() -> list:
    """Decision trace of the paper's Figure 4 scenario (BS + RG + TR)."""
    from repro.experiments import fig4_decisions

    return rows_from(fig4_decisions.run().decisions)


def tab1_trace() -> list:
    """Decision trace of the Table-I class representatives as a workload.

    One session per intensity-class representative, staggered arrivals,
    three launches each — every row/column class of the policy table shows
    up as both the running tenant and the candidate.
    """
    from repro.experiments.tab1_policy import class_representatives
    from repro.slate.daemon import SlateRuntime
    from repro.workloads.app import AppSpec, run_application

    env = Environment()
    runtime = SlateRuntime(env)
    # The representatives carry names like "syn-H_C"; the daemon's textual
    # injection path needs C identifiers, so rename them for this workload.
    reps = {
        cls: dataclasses.replace(spec, name=f"syn{cls.value.replace('_', '')}")
        for cls, spec in class_representatives().items()
    }
    runtime.preload_profiles(list(reps.values()))
    procs = []
    for i, (cls, spec) in enumerate(sorted(reps.items(), key=lambda kv: kv[0].value)):
        app = AppSpec(name=f"{cls.value}-app", kernel=spec, reps=3)

        def staged(env, app=app, delay=i * 0.9e-3):
            yield env.timeout(delay)
            session = runtime.create_session(app.name)
            result = yield from run_application(env, session, app, runtime.costs)
            return result

        procs.append(env.process(staged(env)))
    env.run(until=env.all_of(procs))
    return rows_from(runtime.scheduler.decision_log)


def load_golden(name: str) -> list:
    with open(GOLDEN_DIR / f"{name}.json") as fh:
        return json.load(fh)


def save_golden(name: str, rows: list) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    with open(GOLDEN_DIR / f"{name}.json", "w") as fh:
        json.dump(rows, fh, indent=1)
        fh.write("\n")
