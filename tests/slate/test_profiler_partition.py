"""Profiler and partition tests."""

import pytest

from repro.config import TITAN_XP
from repro.gpu.device import KernelCounters
from repro.kernels import BENCHMARKS, blackscholes, quasirandom
from repro.slate.partition import MIN_SHARE, choose_partition
from repro.slate.profiler import (
    KernelProfile,
    ProfileTable,
    offline_profile,
    profile_from_counters,
)


def fake_profile(name="K", gflops=10.0, bw=100e9, throttle=0.0):
    from repro.slate.classify import classify

    return KernelProfile(
        name=name,
        gflops=gflops,
        mem_bw=bw,
        throttle_fraction=throttle,
        intensity=classify(gflops, bw),
        elapsed=1.0,
    )


class TestProfiler:
    def test_offline_profile_bs(self):
        p = offline_profile(blackscholes())
        assert p.name == "BS"
        assert 100 < p.gflops < 200
        assert p.throttle_fraction > 0.3

    def test_saturation_sms(self):
        assert fake_profile(throttle=0.0).saturation_sms() == 30
        assert fake_profile(throttle=0.5).saturation_sms() == 15
        assert fake_profile(throttle=0.99).saturation_sms() == 1

    def test_bs_saturates_around_a_dozen_sms(self):
        """The Fig. 1 insight applied to BS's profile."""
        p = offline_profile(blackscholes())
        assert 10 <= p.saturation_sms() <= 16

    def test_profile_from_counters(self):
        c = KernelCounters(name="X", start_time=0.0, end_time=2.0)
        c.flops = 4e9
        c.bytes_l2 = 100e9
        c.busy_time = 2.0
        c.mem_throttle_time = 0.5
        p = profile_from_counters(c)
        assert p.gflops == pytest.approx(2.0)
        assert p.mem_bw == pytest.approx(50e9)
        assert p.throttle_fraction == pytest.approx(0.25)

    def test_profile_table_stats(self):
        table = ProfileTable()
        assert table.get("missing") is None
        assert table.misses == 1
        table.put("K", fake_profile())
        assert table.get("K") is not None
        assert table.lookups == 2
        assert "K" in table
        assert len(table) == 1

    def test_record_run(self):
        table = ProfileTable()
        c = KernelCounters(name="Y", start_time=0.0, end_time=1.0)
        c.busy_time = 1.0
        p = table.record_run("Y", c)
        assert table.get("Y") is p


class TestPartition:
    def test_partition_is_disjoint_and_covers_device(self):
        a = offline_profile(blackscholes())
        b = offline_profile(quasirandom())
        part, primary, secondary = choose_partition(a, b)
        assert set(part.primary_sms) & set(part.secondary_sms) == set()
        assert set(part.primary_sms) | set(part.secondary_sms) == set(range(30))
        assert primary is a  # BS is the memory-intensive side
        assert secondary is b

    def test_bs_gets_its_saturation_share(self):
        a = offline_profile(blackscholes())
        b = offline_profile(quasirandom())
        part, _, _ = choose_partition(a, b)
        n_bs, n_rg = part.sizes
        assert n_bs == a.saturation_sms()
        assert n_rg == 30 - n_bs
        assert n_rg > n_bs  # RG rides the larger leftover share

    def test_min_share_guaranteed(self):
        heavy = fake_profile("heavy", bw=540e9, throttle=0.0)  # wants all 30
        light = fake_profile("light", bw=1e9)
        part, _, _ = choose_partition(heavy, light)
        assert part.sizes[0] == 30 - MIN_SHARE
        assert part.sizes[1] == MIN_SHARE

    def test_identical_profiles_split_evenly(self):
        p = fake_profile()
        part, _, _ = choose_partition(p, p)
        assert part.sizes == (15, 15)

    def test_invalid_min_share(self):
        p = fake_profile()
        with pytest.raises(ValueError):
            choose_partition(p, p, min_share=0)
        with pytest.raises(ValueError):
            choose_partition(p, p, min_share=16)

    def test_every_benchmark_pair_produces_valid_partition(self):
        profiles = {n: offline_profile(f()) for n, f in BENCHMARKS.items()}
        for a in profiles.values():
            for b in profiles.values():
                part, _, _ = choose_partition(a, b)
                n1, n2 = part.sizes
                assert n1 + n2 == 30
                assert n1 >= MIN_SHARE and n2 >= MIN_SHARE


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.slate.profiler import load_profiles, save_profiles

        table = ProfileTable()
        table.put("BS", offline_profile(blackscholes()))
        table.put("RG", offline_profile(quasirandom()))
        path = tmp_path / "profiles.json"
        save_profiles(table, path)

        loaded = load_profiles(path)
        assert len(loaded) == 2
        for key in ("BS", "RG"):
            a, b = table.get(key), loaded.get(key)
            assert a.gflops == b.gflops
            assert a.mem_bw == b.mem_bw
            assert a.intensity is b.intensity
            assert a.saturation_sms() == b.saturation_sms()

    def test_loaded_table_drives_scheduler(self, tmp_path):
        from repro.slate.profiler import load_profiles, save_profiles
        from repro.workloads.harness import app_for, run_pair

        table = ProfileTable()
        table.put("BS", offline_profile(blackscholes()))
        table.put("RG", offline_profile(quasirandom()))
        path = tmp_path / "profiles.json"
        save_profiles(table, path)

        # A fresh runtime with the persisted profiles coruns right away.
        results, runtime = run_pair(
            "Slate", app_for("BS", reps=3), app_for("RG", reps=3),
            preload_profiles=False,
        )
        # Without profiles: first runs were solo profiling runs.
        assert runtime.scheduler.solo_launches >= 2

        from repro.sim import Environment
        from repro.slate import SlateRuntime
        from repro.workloads.app import run_application

        env = Environment()
        rt = SlateRuntime(env)
        rt.profiles._profiles.update(load_profiles(path)._profiles)
        rt.scheduler.profiles = rt.profiles
        procs = [
            env.process(run_application(env, rt.create_session(a.name), a, rt.costs))
            for a in (app_for("BS", reps=3), app_for("RG", reps=3))
        ]
        env.run(until=procs[0] & procs[1])
        assert rt.scheduler.corun_launches >= 3
