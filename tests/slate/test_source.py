"""Tests for the kernel scanner and code injector."""

import pytest

from repro.slate.source import InjectionError, inject, scan_kernels

AXPY = """
__global__ void axpy(float* y, const float* x, float a, int n)
{
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { y[i] += a * x[i]; }
}
"""

TILED_2D = """
static __device__ float f(float v) { return v * 2.0f; }

__global__ void tile_op(float* out, const float* in, int n)
{
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  if (row < gridDim.y && col < gridDim.x) {
    out[row * n + col] = f(in[col * n + row]);
  }
}

__global__ void second(float* p) { p[blockIdx.x] = 0.f; }
"""

THREE_D = """
__global__ void vol(float* p)
{
  int z = blockIdx.z;
  p[z] = 1.f;
}
"""


class TestScanner:
    def test_finds_single_kernel(self):
        kernels = scan_kernels(AXPY)
        assert [k.name for k in kernels] == ["axpy"]
        assert kernels[0].builtins_used == ("blockIdx.x",)
        assert not kernels[0].uses_2d_grid

    def test_finds_multiple_kernels_and_skips_device_functions(self):
        kernels = scan_kernels(TILED_2D)
        assert [k.name for k in kernels] == ["tile_op", "second"]

    def test_detects_2d_usage(self):
        kernels = scan_kernels(TILED_2D)
        assert kernels[0].uses_2d_grid
        assert "blockIdx.y" in kernels[0].builtins_used
        assert "gridDim.x" in kernels[0].builtins_used

    def test_params_captured(self):
        k = scan_kernels(AXPY)[0]
        assert "float* y" in k.params and "int n" in k.params

    def test_no_kernels_in_host_code(self):
        assert scan_kernels("int main() { return 0; }") == []

    def test_cache_key_stable_and_body_sensitive(self):
        k1 = scan_kernels(AXPY)[0]
        k2 = scan_kernels(AXPY)[0]
        k3 = scan_kernels(AXPY.replace("a * x[i]", "a + x[i]"))[0]
        assert k1.cache_key() == k2.cache_key()
        assert k1.cache_key() != k3.cache_key()

    def test_unbalanced_braces_detected(self):
        with pytest.raises(InjectionError):
            scan_kernels("__global__ void broken(int n) { if (n) {")


class TestInjector:
    def test_builtins_fully_replaced(self):
        for kernel in scan_kernels(TILED_2D):
            out = inject(kernel)
            # After stripping Slate's own variables, no raw builtin remains.
            cleaned = out.replace("slate_blockID", "").replace("slate_gridDim_x", "").replace(
                "slate_gridDim_y", ""
            )
            assert "blockIdx.x" not in cleaned
            assert "blockIdx.y" not in cleaned
            assert "gridDim.x" not in cleaned
            assert "gridDim.y" not in cleaned

    def test_sm_guard_prologue_present(self):
        out = inject(scan_kernels(AXPY)[0])
        assert "sm_low" in out and "sm_high" in out
        assert "if (!slate_valid_task) { return; }" in out

    def test_scheduling_loop_structure(self):
        out = inject(scan_kernels(AXPY)[0])
        assert "atomicAdd(&slateIdx, SLATE_ITERS)" in out
        assert "while (!slate_retreat() && slate_id < slateMax)" in out
        # Rollover reconstruction, not per-iteration division.
        assert "++slate_blockID.x;" in out
        assert "slate_blockID.x = 0;" in out

    def test_original_code_embedded(self):
        out = inject(scan_kernels(AXPY)[0])
        assert "y[i] += a * x[i];" in out

    def test_sm_bounds_prepended_to_params(self):
        out = inject(scan_kernels(AXPY)[0])
        assert "axpy_slate(const uint sm_low, const uint sm_high, float* y" in out

    def test_3d_grid_rejected(self):
        with pytest.raises(InjectionError, match="3D grid"):
            inject(scan_kernels(THREE_D)[0])

    def test_threadidx_untouched(self):
        """Inner block geometry is preserved (§III-A3)."""
        out = inject(scan_kernels(AXPY)[0])
        assert "threadIdx.x" in out
        assert "blockDim.x" in out


PRAGMA_SOURCE = """
// saxpy with a static transform annotation
#pragma slate transform task_size(20)
__global__ void axpy(float* y, const float* x, float a, int n)
{
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { y[i] += a * x[i]; }
}

__global__ void untouched(float* p) { p[blockIdx.x] = 1.f; }
"""


class TestStaticPragmaInjection:
    def test_scan_pragmas(self):
        from repro.slate.source import scan_pragmas

        annotations = scan_pragmas(PRAGMA_SOURCE)
        assert annotations == [("axpy", {"task_size": "20"})]

    def test_pragma_without_kernel_rejected(self):
        from repro.slate.source import scan_pragmas

        with pytest.raises(InjectionError, match="not followed"):
            scan_pragmas("#pragma slate transform\nint main() { return 0; }")

    def test_pragma_must_be_adjacent(self):
        from repro.slate.source import scan_pragmas

        src = (
            "#pragma slate transform\n"
            "int helper() { return 1; }\n"
            "__global__ void k(float* p) { p[blockIdx.x] = 0.f; }\n"
        )
        with pytest.raises(InjectionError, match="directly above"):
            scan_pragmas(src)

    def test_inject_static_rewrites_only_annotated(self):
        from repro.slate.source import inject_static

        out = inject_static(PRAGMA_SOURCE)
        assert "axpy_slate" in out
        assert "atomicAdd(&slateIdx, SLATE_ITERS)" in out
        # The unannotated kernel survives verbatim.
        assert "__global__ void untouched(float* p) { p[blockIdx.x] = 1.f; }" in out
        # Pragma lines are consumed.
        assert "#pragma slate" not in out
        # Comments outside kernels survive.
        assert "// saxpy with a static transform annotation" in out

    def test_inject_static_no_pragmas_is_identity(self):
        from repro.slate.source import inject_static

        assert inject_static(AXPY) == AXPY

    def test_multiple_pragmas(self):
        from repro.slate.source import inject_static

        src = PRAGMA_SOURCE + "\n#pragma slate transform\n" + AXPY.replace("axpy", "axpy2")
        out = inject_static(src)
        assert "axpy_slate" in out and "axpy2_slate" in out
