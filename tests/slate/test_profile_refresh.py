"""Adaptive profile refresh tests (profile_refresh extension)."""

import pytest
from dataclasses import replace

from repro.kernels import quasirandom, transpose
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.slate.classify import IntensityClass as C


def drifting_kernel(heavy: bool):
    """The 'same' kernel whose behaviour depends on its input data:
    light quasirandom work, or a memory-heavy variant under one name."""
    spec = quasirandom(num_blocks=48_000) if not heavy else transpose(num_blocks=336_000)
    return replace(spec, name="DRIFTY")


def run_phases(refresh: float):
    env = Environment()
    rt = SlateRuntime(env, profile_refresh=refresh)
    session = rt.create_session("app")
    classes = []

    def app(env):
        # Phase 1: light behaviour — profiled as L_C on first run.
        for _ in range(2):
            yield from session.launch(drifting_kernel(heavy=False))
            yield from session.synchronize()
        classes.append(rt.profiles.get("DRIFTY").intensity)
        # Phase 2: the input changes; the kernel turns memory-heavy.
        for _ in range(6):
            yield from session.launch(drifting_kernel(heavy=True))
            yield from session.synchronize()
        classes.append(rt.profiles.get("DRIFTY").intensity)

    env.run(until=env.process(app(env)))
    return classes, rt


class TestProfileRefresh:
    def test_paper_behaviour_keeps_first_profile(self):
        classes, rt = run_phases(refresh=0.0)
        assert classes == [C.L_C, C.L_C]
        assert rt.scheduler.profile_refreshes == 0

    def test_refresh_tracks_behaviour_drift(self):
        classes, rt = run_phases(refresh=0.5)
        assert classes[0] is C.L_C
        assert classes[1] is C.H_M  # converged to the heavy behaviour
        assert rt.scheduler.profile_refreshes >= 5

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SlateRuntime(env, profile_refresh=1.5)

    def test_corun_counters_never_pollute_profiles(self):
        """Only solo full-device runs refresh; corun windows are skewed."""
        from repro.kernels import blackscholes, quasirandom
        from repro.workloads.harness import app_for, run_pair

        results, rt = run_pair(
            "Slate", app_for("BS"), app_for("RG"), profile_refresh=0.5
        )
        bs = rt.profiles.get("BS")
        # BS's profile still reflects solo behaviour: M_M with its
        # saturation point intact (corun runs on 14 SMs would have halved
        # the observed bandwidth and broken this).
        assert bs.intensity is C.M_M
        assert 10 <= bs.saturation_sms() <= 16
