"""Multi-GPU cluster placement tests."""

import pytest

from repro.kernels import blackscholes, gaussian, quasirandom, transpose
from repro.sim import Environment
from repro.slate.cluster import SlateCluster
from repro.workloads.app import AppSpec, run_application


def run_cluster_apps(cluster, specs, reps=4):
    """Run one app per spec through the cluster; returns results by name."""
    env = cluster.env
    procs = []
    for spec in specs:
        session = cluster.create_session(spec.name, spec_hint=spec.kernel)
        procs.append(
            env.process(
                run_application(env, session, spec, cluster.runtime(0).costs)
            )
        )
    env.run(until=env.all_of(procs))
    return {p.value.name: p.value for p in procs}


class TestConstruction:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SlateCluster(env, num_devices=0)
        with pytest.raises(ValueError):
            SlateCluster(env, placement="random")

    def test_independent_devices(self):
        env = Environment()
        cluster = SlateCluster(env, num_devices=3)
        assert cluster.num_devices == 3
        gpus = {id(cluster.runtime(i).gpu) for i in range(3)}
        assert len(gpus) == 3


class TestPlacementPolicies:
    def test_round_robin_cycles(self):
        env = Environment()
        cluster = SlateCluster(env, num_devices=2, placement="round-robin")
        for i, name in enumerate("abcd"):
            cluster.create_session(name)
        assert [cluster.placements[n] for n in "abcd"] == [0, 1, 0, 1]

    def test_least_loaded_balances(self):
        env = Environment()
        cluster = SlateCluster(env, num_devices=2, placement="least-loaded")
        bs = blackscholes()
        cluster.preload_profiles([bs])
        s1 = cluster.create_session("a", spec_hint=bs)
        s2 = cluster.create_session("b", spec_hint=bs)
        assert cluster.placements["a"] != cluster.placements["b"]
        # Closing releases the slot.
        s1.close()
        cluster.create_session("c", spec_hint=bs)
        assert cluster.placements["c"] == cluster.placements["a"]

    def test_class_aware_separates_memory_hogs(self):
        """Two memory kernels land on different devices; the light RG
        joins a memory tenant it complements."""
        env = Environment()
        cluster = SlateCluster(env, num_devices=2, placement="class-aware")
        bs, tr, rg = blackscholes(), transpose(), quasirandom()
        cluster.preload_profiles([bs, tr, rg])
        cluster.create_session("bs-app", spec_hint=bs)
        cluster.create_session("tr-app", spec_hint=tr)
        assert cluster.placements["bs-app"] != cluster.placements["tr-app"]
        cluster.create_session("rg-app", spec_hint=rg)
        # RG is compatible with both; it joins the less loaded... both have
        # one resident, so it lands on the first compatible device.
        assert cluster.placements["rg-app"] in (0, 1)

    def test_class_aware_without_hint_falls_back(self):
        env = Environment()
        cluster = SlateCluster(env, num_devices=2, placement="class-aware")
        cluster.create_session("anon")
        assert cluster.placements["anon"] == 0


class TestEndToEnd:
    def make_apps(self):
        return [
            AppSpec(name="pricing", kernel=blackscholes(), reps=4),
            AppSpec(name="mc1", kernel=quasirandom(), reps=4),
            AppSpec(name="solver", kernel=gaussian(), reps=4),
            AppSpec(name="mc2", kernel=quasirandom(num_blocks=48_000), reps=4),
        ]

    def test_four_apps_two_gpus_class_aware(self):
        env = Environment()
        cluster = SlateCluster(env, num_devices=2, placement="class-aware")
        apps = self.make_apps()
        cluster.preload_profiles([a.kernel for a in apps])
        results = run_cluster_apps(cluster, apps)
        assert len(results) == 4
        # The two memory-intensive apps ended on different devices.
        assert cluster.placements["pricing"] != cluster.placements["solver"]
        # Each device co-ran its (memory, light) pair.
        total_coruns = sum(
            cluster.runtime(i).scheduler.corun_launches for i in range(2)
        )
        assert total_coruns >= 4

    def test_class_aware_beats_round_robin_on_adversarial_order(self):
        """Arrival order BS, RG, GS, RG: round-robin lands both memory
        hogs (BS, GS) on device 0 and both RGs on device 1; class-aware
        pairs each hog with a light kernel and wins on makespan."""

        def run(placement):
            env = Environment()
            cluster = SlateCluster(env, num_devices=2, placement=placement)
            apps = [
                AppSpec(name="bs", kernel=blackscholes(), reps=5),
                AppSpec(name="rg1", kernel=quasirandom(), reps=5),
                AppSpec(name="gs", kernel=gaussian(), reps=5),
                AppSpec(name="rg2", kernel=quasirandom(num_blocks=48_000), reps=5),
            ]
            cluster.preload_profiles([a.kernel for a in apps])
            results = run_cluster_apps(cluster, apps)
            return max(r.end for r in results.values()), cluster

        makespan_rr, cluster_rr = run("round-robin")
        makespan_ca, cluster_ca = run("class-aware")
        # Round-robin co-locates the hogs on this order; class-aware splits.
        assert cluster_rr.placements["bs"] == cluster_rr.placements["gs"]
        assert cluster_ca.placements["bs"] != cluster_ca.placements["gs"]
        assert makespan_ca < 0.95 * makespan_rr

    def test_single_device_cluster_equals_plain_runtime(self):
        env = Environment()
        cluster = SlateCluster(env, num_devices=1)
        apps = self.make_apps()[:2]
        cluster.preload_profiles([a.kernel for a in apps])
        results = run_cluster_apps(cluster, apps)
        assert all(cluster.placements[a.name] == 0 for a in apps)
        assert cluster.runtime(0).scheduler.corun_launches >= 1
        assert len(results) == 2
