"""Classification and Table I policy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import TITAN_XP
from repro.slate.classify import (
    ClassifierThresholds,
    IntensityClass as C,
    Level,
    classify,
    classify_levels,
)
from repro.slate.policy import DEFAULT_POLICY, PolicyTable
from repro.slate.profiler import offline_profile
from repro.kernels import BENCHMARKS


class TestClassifyLevels:
    def test_memory_levels(self):
        peak = TITAN_XP.dram_bandwidth  # bytes/s
        assert classify_levels(0, 0.9 * peak)[1] is Level.HIGH
        assert classify_levels(0, 0.5 * peak)[1] is Level.MED
        assert classify_levels(0, 0.1 * peak)[1] is Level.LOW

    def test_compute_levels(self):
        peak_gf = TITAN_XP.device_flops / 1e9
        assert classify_levels(0.2 * peak_gf, 0)[0] is Level.HIGH
        assert classify_levels(0.05 * peak_gf, 0)[0] is Level.MED
        assert classify_levels(0.001 * peak_gf, 0)[0] is Level.LOW

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            classify_levels(-1, 0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ClassifierThresholds(compute_high=0.01, compute_med=0.1)


class TestCombinedClass:
    def test_memory_priority(self):
        """High compute + medium memory -> M_M (memory wins)."""
        peak_gf = TITAN_XP.device_flops / 1e9
        peak_bw = TITAN_XP.dram_bandwidth  # bytes/s
        assert classify(0.5 * peak_gf, 0.5 * peak_bw) is C.M_M
        assert classify(0.5 * peak_gf, 0.95 * peak_bw) is C.H_M

    def test_low_memory_uses_compute_class(self):
        peak_gf = TITAN_XP.device_flops / 1e9
        assert classify(0.0001 * peak_gf, 0) is C.L_C
        assert classify(0.05 * peak_gf, 0) is C.M_C
        assert classify(0.5 * peak_gf, 0) is C.H_C

    @pytest.mark.parametrize(
        "bench,expected",
        [("BS", C.M_M), ("GS", C.M_M), ("MM", C.M_M), ("RG", C.L_C), ("TR", C.H_M)],
    )
    def test_paper_benchmarks_land_in_published_classes(self, bench, expected):
        profile = offline_profile(BENCHMARKS[bench]())
        assert profile.intensity is expected

    @given(gf=st.floats(min_value=0, max_value=1e5), bw=st.floats(min_value=0, max_value=1e12))
    def test_classification_total(self, gf, bw):
        assert classify(gf, bw) in list(C)


class TestPolicyTable:
    def test_table_is_complete(self):
        for a in C:
            for b in C:
                assert DEFAULT_POLICY.decision(a, b) in ("corun", "solo")

    def test_paper_rows_verbatim(self):
        """Spot-check the published matrix, including its asymmetries."""
        p = DEFAULT_POLICY
        assert p.should_corun(C.L_C, C.L_C)
        assert p.should_corun(C.L_C, C.M_M)
        assert p.should_corun(C.M_M, C.L_C)
        assert not p.should_corun(C.L_C, C.H_C)
        assert not p.should_corun(C.H_C, C.L_C)
        assert not p.should_corun(C.M_M, C.M_M)
        assert not p.should_corun(C.H_M, C.H_M)
        assert not p.should_corun(C.M_M, C.H_M)
        # The published asymmetries, reproduced verbatim:
        assert not p.should_corun(C.H_C, C.M_M)
        assert p.should_corun(C.M_M, C.H_C)
        assert p.should_corun(C.H_C, C.H_M)
        assert not p.should_corun(C.H_M, C.H_C)

    def test_rg_coruns_with_every_benchmark_class(self):
        """§V-E: 'Slate concurrently runs RG with all the other kernels'."""
        for other in (C.M_M, C.H_M, C.L_C):
            assert DEFAULT_POLICY.should_corun(other, C.L_C)
            assert DEFAULT_POLICY.should_corun(C.L_C, other)

    def test_memory_pairs_run_solo(self):
        """Memory-intensive kernels never share (rows M_M/H_M x M_M/H_M)."""
        for a in (C.M_M, C.H_M):
            for b in (C.M_M, C.H_M):
                assert not DEFAULT_POLICY.should_corun(a, b)

    def test_custom_table_validation(self):
        with pytest.raises(ValueError):
            PolicyTable(table={(C.L_C, C.L_C): "maybe"})

    def test_corun_pairs_listing(self):
        pairs = DEFAULT_POLICY.corun_pairs()
        assert (C.L_C, C.L_C) in pairs
        assert (C.M_M, C.M_M) not in pairs
        assert len(pairs) == sum(
            DEFAULT_POLICY.decision(a, b) == "corun" for a in C for b in C
        )


class TestClassificationBases:
    def test_unknown_basis_rejected(self):
        with pytest.raises(ValueError, match="unknown classification basis"):
            classify_levels(1.0, 1.0, basis="magic")

    def test_bases_agree_on_calibration_device(self):
        """At 30 SMs the per-SM basis reduces to the device basis."""
        for bench, factory in BENCHMARKS.items():
            device_cls = offline_profile(factory(), basis="device").intensity
            per_sm_cls = offline_profile(factory(), basis="per_sm").intensity
            assert device_cls is per_sm_cls, bench

    def test_per_sm_basis_is_scale_invariant(self):
        """Same kernel, compute-scaled device: per-SM class is unchanged,
        device-basis class drifts (the scaling-experiment finding)."""
        from repro.config import TITAN_XP
        from repro.kernels import quasirandom

        dev60 = TITAN_XP.with_sms(60)
        rg = quasirandom()
        assert offline_profile(rg, dev60, basis="per_sm").intensity is C.L_C
        assert offline_profile(rg, dev60, basis="device").intensity is C.M_M

    def test_daemon_accepts_basis(self):
        from repro.sim import Environment
        from repro.slate import SlateRuntime

        env = Environment()
        rt = SlateRuntime(env, classification_basis="per_sm")
        assert rt.profiles.basis == "per_sm"


class TestCanonicalPairKey:
    """Regression: unordered pair lookups must not depend on operand order.

    ``PolicyTable.should_corun`` is directional by design (row = running
    tenant), but callers with no running side — cluster placement,
    feasibility pre-checks — used to issue two directional lookups in
    whatever order their arguments arrived, silently flipping answers on
    asymmetric cells.  ``pair_key``/``mutual_corun`` canonicalize instead.
    """

    def test_pair_key_is_symmetric_for_all_pairs(self):
        for a in C:
            for b in C:
                assert PolicyTable.pair_key(a, b) == PolicyTable.pair_key(b, a)

    def test_pair_key_identity_pairs(self):
        for a in C:
            assert PolicyTable.pair_key(a, a) == (a, a)

    def test_pair_key_is_sorted(self):
        for a in C:
            for b in C:
                x, y = PolicyTable.pair_key(a, b)
                assert x.value <= y.value
                assert {x, y} == {a, b}

    def test_mutual_corun_is_order_insensitive(self):
        for a in C:
            for b in C:
                assert DEFAULT_POLICY.mutual_corun(a, b) == DEFAULT_POLICY.mutual_corun(b, a)

    def test_mutual_corun_requires_both_directions(self):
        for a in C:
            for b in C:
                expected = DEFAULT_POLICY.should_corun(a, b) and DEFAULT_POLICY.should_corun(b, a)
                assert DEFAULT_POLICY.mutual_corun(a, b) == expected

    def test_mutual_corun_catches_asymmetric_cells(self):
        """The paper's own table is asymmetric (M_M row tolerates H_C, the
        H_C row does not): the one-way lookup flips with operand order,
        mutual_corun does not admit the pair either way."""
        a, b = C.M_M, C.H_C
        assert DEFAULT_POLICY.should_corun(a, b) != DEFAULT_POLICY.should_corun(b, a)
        assert not DEFAULT_POLICY.mutual_corun(a, b)
        assert not DEFAULT_POLICY.mutual_corun(b, a)
