"""Scheduler liveness: incompatible tenants are not starved.

Two complementary apps (BS, RG) loop co-running; a third, incompatible
tenant (TR, memory-intensive) arrives mid-run.  Because every app
synchronizes per launch, the device drains between repetitions, and FIFO
ordering of the waiting queue guarantees TR gets its turns.
"""

import pytest

from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.kernels import blackscholes, quasirandom, transpose


def test_incompatible_third_tenant_makes_progress():
    env = Environment()
    rt = SlateRuntime(env)
    bs, rg, tr = blackscholes(), quasirandom(), transpose()
    rt.preload_profiles([bs, rg, tr])
    finish = {}

    def app(env, name, spec, reps, delay=0.0):
        yield env.timeout(delay)
        session = rt.create_session(name)
        waits = []
        for _ in range(reps):
            ticket = yield from session.launch(spec)
            yield from session.synchronize()
            waits.append(ticket.started_at - ticket.enqueued_at)
        finish[name] = (env.now, waits)
        session.close()

    procs = [
        env.process(app(env, "bs", bs, 8)),
        env.process(app(env, "rg", rg, 8)),
        env.process(app(env, "tr", tr, 6, delay=5e-3)),
    ]
    env.run(until=env.all_of(procs))

    assert set(finish) == {"bs", "rg", "tr"}
    tr_end, tr_waits = finish["tr"]
    # TR completed all its launches, and no single wait exceeded a couple
    # of partner kernel durations (~2.5 ms each).
    assert len(tr_waits) == 6
    assert max(tr_waits) < 15e-3


def test_waiting_queue_is_fifo_within_priority():
    env = Environment()
    rt = SlateRuntime(env)
    bs, tr = blackscholes(), transpose()
    rt.preload_profiles([bs, tr])
    order = []

    def app(env, name, spec, delay):
        yield env.timeout(delay)
        session = rt.create_session(name)
        ticket = yield from session.launch(spec)
        yield from session.synchronize()
        order.append((ticket.started_at, name))
        session.close()

    # Occupy the device, then two incompatible tenants queue up.
    procs = [
        env.process(app(env, "first", bs, 0.0)),
        env.process(app(env, "second", tr, 1e-4)),
        env.process(app(env, "third", bs, 2e-4)),
    ]
    env.run(until=env.all_of(procs))
    started = [name for _, name in sorted(order)]
    assert started == ["first", "second", "third"]
