"""FROZEN seed scheduler — the differential-harness reference (DO NOT EDIT).

This is a verbatim copy of src/repro/slate/scheduler.py as of the commit
that introduced the pluggable SchedulingPolicy framework (PR 6).  The
differential harness in test_policy_differential.py replays identical
workloads through this frozen seed and through the refactored scheduler
with the default `table1` policy, and asserts the decision traces are
byte-exact.  If the refactored scheduler ever drifts, the diff points at
the exact decision that moved.

Edits here defeat the harness' purpose: regenerate only by copying a
known-good scheduler wholesale, never by patching individual lines.

One sanctioned exception: the same-instant preemption/completion race
fix (restricting preemption victims to device-side RUNNING executions)
is backported below, clearly marked.  It is a crash bug in the seed, not
a refactor artifact — carrying it forward would force the differential
to special-case every trace where the seed picks a draining victim,
which is exactly the drift-detection the harness exists to provide.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Hashable, Iterator, Optional

from repro.config import CostModel, DeviceConfig, TITAN_XP
from repro.gpu.device import (
    ExecState,
    ExecutionMode,
    KernelCounters,
    KernelExecution,
    SimulatedGPU,
)
from repro.kernels.kernel import KernelSpec
from repro.obs import trace as obs_trace
from repro.obs.registry import registry as obs_registry
from repro.slate.partition import choose_partition
from repro.slate.policy import DEFAULT_POLICY, PolicyTable
from repro.slate.profiler import KernelProfile, ProfileTable
from repro.sim import Environment, Event

__all__ = [
    "Decision",
    "SlateScheduler",
    "SlateTicket",
    "WaitingQueue",
    "DEFAULT_TASK_SIZE",
    "SLATE_INJECT_FRAC",
]

#: The paper's default task size ("We set the default task size as 10
#: blocks", §V-B).
DEFAULT_TASK_SIZE = 10

#: Injected-instruction overhead: "about 4 million or 3% more instructions"
#: for BlackScholes (§V-D1).
SLATE_INJECT_FRAC = 0.03


@dataclass
class SlateTicket:
    """One kernel launch request inside the daemon."""

    spec: KernelSpec
    profile_key: Hashable
    done: Event
    enqueued_at: float
    task_size: int = DEFAULT_TASK_SIZE
    #: Larger = more important.  Orders the waiting queue; with the
    #: scheduler's ``enable_preemption``, a strictly-higher-priority
    #: arrival that cannot corun preempts the running kernel (retreat,
    #: progress held in slateIdx, resumed on completion).
    priority: int = 0
    started_at: Optional[float] = None
    #: Times this ticket's kernel was preempted by a higher priority one.
    preemptions: int = 0
    counters: Optional[KernelCounters] = None
    #: Whether this run executed without a profile (first-run profiling).
    profiling_run: bool = False
    seq: int = field(default_factory=itertools.count().__next__)


@dataclass(frozen=True)
class Decision:
    """One scheduling decision, with enough context to explain it."""

    time: float
    kind: str  # solo | corun | preempt | resume
    kernel: str
    #: Intensity classes involved: (newcomer, *tenants) where known.
    classes: tuple[str, ...] = ()
    #: SM count granted to the kernel the decision is about.
    sms: int = 0
    reason: str = ""

    def describe(self) -> str:
        klasses = " vs ".join(self.classes) if self.classes else "?"
        return (
            f"t={self.time * 1e3:9.3f} ms  {self.kind:7}  {self.kernel:8} "
            f"[{klasses}] -> {self.sms} SMs  ({self.reason})"
        )


@dataclass
class _Running:
    ticket: SlateTicket
    handle: KernelExecution
    sms: tuple[int, ...]


class WaitingQueue:
    """The scheduler's waiting queue: a priority heap with FIFO tie-break.

    Ordering contract (identical to the list-sort it replaced): tickets
    drain highest ``priority`` first, and FIFO by submission ``seq`` within
    a priority level.  ``seq`` is unique per ticket, so the heap key
    ``(-priority, seq)`` is a total order and tickets themselves are never
    compared.  A ticket's priority is captured at :meth:`push` time —
    mutating it while queued does not reorder the queue.

    Every consumer goes through :meth:`peek`/:meth:`pop`; there is no way
    to bypass the ordering invariant (the scheduler holds no raw list).
    Push and pop are O(log n), peek and len O(1) — on a million-launch
    trace the old sort-on-submit plus ``pop(0)`` was the daemon's dominant
    cost.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[int, int], SlateTicket]] = []

    def push(self, ticket: SlateTicket) -> None:
        heappush(self._heap, ((-ticket.priority, ticket.seq), ticket))

    def peek(self) -> SlateTicket:
        """The next ticket to drain, without removing it."""
        return self._heap[0][1]

    def pop(self) -> SlateTicket:
        return heappop(self._heap)[1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[SlateTicket]:
        """Tickets in drain order (non-destructive; for tests/diagnostics)."""
        return (ticket for _key, ticket in sorted(self._heap))


class SlateScheduler:
    """Workload-aware scheduler bound to one simulated device."""

    def __init__(
        self,
        env: Environment,
        gpu: SimulatedGPU,
        device: DeviceConfig = TITAN_XP,
        costs: CostModel = CostModel(),
        policy: PolicyTable = DEFAULT_POLICY,
        profiles: Optional[ProfileTable] = None,
        partition_strategy: str = "heuristic",
        enable_grow: bool = True,
        enable_preemption: bool = False,
        max_corun: int = 2,
        profile_refresh: float = 0.0,
        log_limit: Optional[int] = None,
    ) -> None:
        if partition_strategy not in ("heuristic", "predictive", "even"):
            raise ValueError(f"unknown partition strategy {partition_strategy!r}")
        if max_corun < 1:
            raise ValueError("max_corun must be >= 1")
        if not 0.0 <= profile_refresh <= 1.0:
            raise ValueError("profile_refresh must be in [0, 1]")
        self.env = env
        self.gpu = gpu
        self.device = device
        self.costs = costs
        self.policy = policy
        self.partition_strategy = partition_strategy
        #: Dynamic-resizing grow on completion (disable for ablations).
        self.enable_grow = enable_grow
        #: Priority preemption (QoS extension; off = paper behaviour).
        self.enable_preemption = enable_preemption
        #: Tenants allowed to share the device simultaneously.  The paper
        #: evaluates pairs (2); higher values enable N-way co-residency
        #: when the policy approves the newcomer against EVERY tenant.
        self.max_corun = max_corun
        #: Exponential-smoothing weight for refreshing a kernel's profile
        #: from later *solo full-device* runs (0 = paper behaviour: the
        #: first-run profile is kept forever).  Lets the scheduler track
        #: kernels whose behaviour drifts with their input data.
        self.profile_refresh = profile_refresh
        self.profile_refreshes = 0
        self._preempted: list[_Running] = []
        self.preemptions = 0
        self.profiles = profiles if profiles is not None else ProfileTable(device)
        self._queue = WaitingQueue()
        self._running: list[_Running] = []
        # Statistics for the evaluation.
        self.corun_launches = 0
        self.solo_launches = 0
        self.resizes = 0
        #: Bound on the decision/allocation logs: ``None`` keeps full
        #: history (paper experiments), a positive N keeps the last N
        #: entries, and 0 disables logging entirely — million-launch
        #: traces would otherwise hold gigabytes of Decision records.
        self.log_limit = log_limit
        #: Total decisions ever made (survives log truncation).
        self.decisions_total = 0
        self.decision_log: "list[Decision] | deque[Decision]" = (
            [] if log_limit is None else deque(maxlen=log_limit)
        )
        #: (time, {kernel name: (sm_low, sm_high)}) after every allocation
        #: change — the input to the timeline renderer.
        self.allocation_log: "list | deque" = (
            [] if log_limit is None else deque(maxlen=log_limit)
        )
        # Process-wide mirrors of the per-instance counters, shared through
        # repro.obs.registry (the instance attributes remain the
        # per-scheduler view; the registry carries process totals).
        reg = obs_registry()
        self._m_decisions = reg.counter("scheduler.decisions")
        self._m_submits = reg.counter("scheduler.submits")
        self._m_solo = reg.counter("scheduler.solo_launches")
        self._m_corun = reg.counter("scheduler.corun_launches")
        self._m_resizes = reg.counter("scheduler.resizes")
        self._m_preemptions = reg.counter("scheduler.preemptions")

    @property
    def decisions(self) -> list[tuple[float, str]]:
        """(time, kind) view of the decision log (backwards compatible)."""
        return [(d.time, d.kind) for d in self.decision_log]

    def _decide(self, kind, ticket, classes=(), sms=0, reason="") -> None:
        self.decisions_total += 1
        self._m_decisions.inc()
        if obs_trace.ENABLED:
            obs_trace.instant(
                f"decide.{kind}",
                self.env.now,
                "scheduler",
                "decisions",
                kernel=ticket.spec.name,
                classes=list(classes),
                sms=sms,
                reason=reason,
            )
        if self.log_limit == 0:
            return
        self.decision_log.append(
            Decision(
                time=self.env.now,
                kind=kind,
                kernel=ticket.spec.name,
                classes=tuple(classes),
                sms=sms,
                reason=reason,
            )
        )

    def explain(self, last: int = 20) -> str:
        """Human-readable tail of the decision log."""
        return "\n".join(d.describe() for d in list(self.decision_log)[-last:])

    def _log_allocation(self) -> None:
        tracing = obs_trace.ENABLED
        if self.log_limit == 0 and not tracing:
            return
        snapshot = {
            r.ticket.spec.name: (min(r.sms), max(r.sms)) for r in self._running
        }
        if tracing:
            obs_trace.allocation(self.env.now, snapshot)
        if self.log_limit != 0:
            self.allocation_log.append((self.env.now, snapshot))

    def _note_resize(self, kernel: str, sms: tuple[int, ...]) -> None:
        """Count a resize on every surface (instance, registry, trace)."""
        self.resizes += 1
        self._m_resizes.inc()
        if obs_trace.ENABLED:
            obs_trace.instant(
                "resize",
                self.env.now,
                "scheduler",
                "decisions",
                kernel=kernel,
                sms=len(sms),
            )

    # -- public API -------------------------------------------------------

    def submit(self, ticket: SlateTicket) -> None:
        """Accept a launch request and re-evaluate the schedule."""
        # Highest priority first; FIFO within a priority level (the
        # WaitingQueue ordering contract).
        self._queue.push(ticket)
        self._m_submits.inc()
        if obs_trace.ENABLED:
            obs_trace.instant(
                "submit",
                self.env.now,
                "scheduler",
                "queue",
                kernel=ticket.spec.name,
                priority=ticket.priority,
                depth=len(self._queue),
            )
        if self.enable_preemption:
            self._maybe_preempt()
        self._try_schedule()

    # -- priority preemption (QoS extension) --------------------------------

    def _maybe_preempt(self) -> None:
        """Preempt a lower-priority kernel for an incompatible VIP arrival.

        Slate's retreat mechanism makes this cheap: the victim's workers
        drain their current tasks, progress stays in ``slateIdx``, and the
        kernel resumes on the freed device once the VIP completes.
        """
        if not self._queue or not self._running:
            return
        head = self._queue.peek()
        # Backported race fix (the one sanctioned edit, see module
        # docstring): only device-side RUNNING tenants can retreat.
        candidates = [
            r for r in self._running if r.handle.state is ExecState.RUNNING
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda r: r.ticket.priority)
        if head.priority <= victim.ticket.priority:
            return
        if self._can_schedule_more():
            return  # compatible corun serves the VIP without a preemption
        self.gpu.pause(victim.handle)
        self._running.remove(victim)
        self._preempted.append(victim)
        victim.ticket.preemptions += 1
        self.preemptions += 1
        self._m_preemptions.inc()
        self._decide(
            "preempt",
            victim.ticket,
            classes=(str(head.priority), str(victim.ticket.priority)),
            sms=0,
            reason=f"priority {head.priority} arrival beats {victim.ticket.priority}",
        )
        self._log_allocation()

    def _resume_preempted(self) -> None:
        if not self._preempted or self._running:
            return
        entry = self._preempted.pop()
        # Resume on the whole device (its SMs may have been taken over).
        entry.sms = self.gpu.all_sms()
        self.gpu.resume(entry.handle)
        self._running.append(entry)
        self._decide(
            "resume", entry.ticket, sms=len(entry.sms), reason="VIP completed"
        )
        self._log_allocation()

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def waiting_count(self) -> int:
        return len(self._queue)

    @property
    def waiting(self) -> "WaitingQueue":
        """The waiting queue (read via peek/iteration; submit to add)."""
        return self._queue

    def running_sms(self) -> dict[str, tuple[int, ...]]:
        """Current kernel -> SM-set assignment (for tests/diagnostics)."""
        return {r.ticket.spec.name: r.sms for r in self._running}

    # -- scheduling core ----------------------------------------------------

    def _profile_of(self, ticket: SlateTicket) -> Optional[KernelProfile]:
        return self.profiles.get(ticket.profile_key)

    def _launch(self, ticket: SlateTicket, sms: tuple[int, ...]) -> None:
        ticket.started_at = self.env.now
        handle = self.gpu.launch(
            ticket.spec.work(),
            sm_ids=sms,
            mode=ExecutionMode.SLATE,
            task_size=ticket.task_size,
            inject_frac=SLATE_INJECT_FRAC,
        )
        entry = _Running(ticket=ticket, handle=handle, sms=sms)
        self._running.append(entry)
        if obs_trace.ENABLED:
            obs_trace.instant(
                "launch",
                self.env.now,
                "tenants",
                ticket.spec.name,
                sms=len(sms),
                sm_low=min(sms),
                sm_high=max(sms),
            )
        self._log_allocation()
        # Completion is handled by a plain event callback, not a spawned
        # process: a per-launch Process costs an object, a generator frame,
        # and an initialisation event — at trace scale that machinery is
        # pure overhead for a one-shot wait.
        handle.done.callbacks.append(
            lambda ev, entry=entry: self._on_kernel_done(entry, ev._value)
        )

    def _on_kernel_done(self, entry: _Running, counters) -> None:
        entry.ticket.counters = counters
        if entry.ticket.profile_key not in self.profiles:
            self.profiles.record_run(entry.ticket.profile_key, counters)
        elif (
            self.profile_refresh > 0
            and entry.sms == self.gpu.all_sms()
            and counters.resizes == 0
        ):
            self._refresh_profile(entry.ticket.profile_key, counters)
        self._running.remove(entry)
        if obs_trace.ENABLED and entry.ticket.started_at is not None:
            # One complete ("X") span per execution: B/E pairs would nest
            # wrongly when identical kernels corun on the same track.
            obs_trace.complete(
                entry.ticket.spec.name,
                entry.ticket.started_at,
                self.env.now - entry.ticket.started_at,
                "tenants",
                entry.ticket.spec.name,
                sms=len(entry.sms),
                preemptions=entry.ticket.preemptions,
                profiling_run=entry.ticket.profiling_run,
            )
        self._log_allocation()
        entry.ticket.done.succeed(counters)
        self._on_completion()

    def _refresh_profile(self, key, counters) -> None:
        """Blend a fresh solo observation into the stored profile."""
        from repro.slate.profiler import profile_from_counters

        old = self.profiles.get(key)
        fresh = profile_from_counters(counters, self.device, basis=self.profiles.basis)
        w = self.profile_refresh
        from dataclasses import replace

        from repro.slate.classify import classify

        gflops = (1 - w) * old.gflops + w * fresh.gflops
        mem_bw = (1 - w) * old.mem_bw + w * fresh.mem_bw
        throttle = (1 - w) * old.throttle_fraction + w * fresh.throttle_fraction
        blended = replace(
            old,
            gflops=gflops,
            mem_bw=mem_bw,
            throttle_fraction=throttle,
            intensity=classify(
                gflops, mem_bw, self.device, basis=self.profiles.basis
            ),
            elapsed=fresh.elapsed,
        )
        self.profiles.put(key, blended)
        self.profile_refreshes += 1

    def _on_completion(self) -> None:
        if self.enable_preemption:
            self._resume_preempted()
        self._try_schedule()
        if not self.enable_grow:
            return
        if len(self._running) == 1 and not self._can_schedule_more():
            # Grow the survivor onto the whole device (§III-C) — after a
            # short grace so a partner's imminent next launch (the looped
            # workloads' steady state) does not trigger grow-then-shrink
            # retreat churn.
            survivor = self._running[0]
            if survivor.sms != self.gpu.all_sms():
                self.env.process(self._grow_after_grace(survivor))
        elif len(self._running) >= 2 and not self._can_schedule_more():
            # N-way: surviving tenants claim the freed SMs.
            covered = sum(len(r.sms) for r in self._running)
            if covered < self.device.num_sms:
                self.env.process(self._rebalance_after_grace(len(self._running)))

    def _grow_after_grace(self, survivor: _Running):
        sms_at_schedule = survivor.sms
        yield self.env.timeout(self.costs.grow_grace)
        still_running = len(self._running) == 1 and self._running[0] is survivor
        if not still_running or self._queue or survivor.sms != sms_at_schedule:
            return
        all_sms = self.gpu.all_sms()
        survivor.sms = all_sms
        self._note_resize(survivor.ticket.spec.name, all_sms)
        self.gpu.resize(survivor.handle, all_sms)
        self._log_allocation()

    def _rebalance_after_grace(self, survivor_count: int):
        yield self.env.timeout(self.costs.grow_grace)
        if len(self._running) != survivor_count or self._queue:
            return
        covered = sum(len(r.sms) for r in self._running)
        if covered < self.device.num_sms:
            self._rebalance_survivors()

    def _can_schedule_more(self) -> bool:
        if not self._queue:
            return False
        if not self._running:
            return True
        if len(self._running) >= self.max_corun:
            return False
        head = self._queue.peek()
        head_profile = self._profile_of(head)
        if head_profile is None:
            return False
        for running in self._running:
            running_profile = self._profile_of(running.ticket)
            if running_profile is None:
                return False
            if not self.policy.should_corun(
                running_profile.intensity, head_profile.intensity
            ):
                return False
        return True

    def _split_device(
        self,
        running: "_Running",
        head: SlateTicket,
        running_profile: KernelProfile,
        head_profile: KernelProfile,
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """SM sets (for the running kernel, for the newcomer)."""
        n = self.device.num_sms
        if self.partition_strategy == "even":
            half = n // 2
            return tuple(range(half)), tuple(range(half, n))
        if self.partition_strategy == "predictive":
            from repro.slate.predict import choose_partition_predictive

            split = choose_partition_predictive(
                running.ticket.spec,
                head.spec,
                self.device,
                self.costs,
                task_size=head.task_size,
            )
            return (
                tuple(range(split.n_a)),
                tuple(range(split.n_a, n)),
            )
        partition, primary, _secondary = choose_partition(
            running_profile, head_profile, self.device
        )
        if primary is running_profile:
            return partition.primary_sms, partition.secondary_sms
        return partition.secondary_sms, partition.primary_sms

    def _nway_shares(self, profiles: list[KernelProfile]) -> list[int]:
        """SM share per tenant: the most memory-intensive keeps its
        saturation share (capped), the rest split the remainder evenly."""
        n = self.device.num_sms
        k = len(profiles)
        primary_index = max(
            range(k), key=lambda i: (profiles[i].mem_bw, profiles[i].gflops)
        )
        needed = profiles[primary_index].saturation_sms(self.device)
        primary_share = max(3, min(n - 3 * (k - 1), needed))
        rest = n - primary_share
        shares = []
        others = k - 1
        for i in range(k):
            if i == primary_index:
                shares.append(primary_share)
            else:
                share = rest // others
                shares.append(share)
        # Distribute any remainder to the last non-primary tenant.
        deficit = n - sum(shares)
        for i in range(k - 1, -1, -1):
            if i != primary_index:
                shares[i] += deficit
                break
        else:
            shares[primary_index] += deficit
        return shares

    def _admit_nway(self, head: SlateTicket) -> None:
        """Admit ``head`` as the (k+1)-th tenant: re-split and resize."""
        tenants = list(self._running)
        profiles = [self._profile_of(t.ticket) for t in tenants]
        profiles.append(self._profile_of(head))
        shares = self._nway_shares(profiles)
        low = 0
        assignments = []
        for share in shares:
            assignments.append(tuple(range(low, low + share)))
            low += share
        for entry, sms in zip(tenants, assignments[:-1]):
            if entry.sms != sms:
                entry.sms = sms
                self._note_resize(entry.ticket.spec.name, sms)
                self.gpu.resize(entry.handle, sms)
        self.corun_launches += 1
        self._m_corun.inc()
        head_profile = self._profile_of(head)
        self._decide(
            "corun",
            head,
            classes=tuple(p.intensity.value for p in profiles),
            sms=len(assignments[-1]),
            reason=f"{len(tenants) + 1}-way complementary set",
        )
        self._launch(head, assignments[-1])
        self._log_allocation()

    def _rebalance_survivors(self) -> None:
        """After a completion with >= 2 survivors, claim the freed SMs."""
        tenants = list(self._running)
        profiles = [self._profile_of(t.ticket) for t in tenants]
        if any(p is None for p in profiles):
            return
        shares = self._nway_shares(profiles)
        low = 0
        for entry, share in zip(tenants, shares):
            sms = tuple(range(low, low + share))
            low += share
            if entry.sms != sms:
                entry.sms = sms
                self._note_resize(entry.ticket.spec.name, sms)
                self.gpu.resize(entry.handle, sms)
        self._log_allocation()

    def _try_schedule(self) -> None:
        while self._queue:
            if not self._running:
                # Idle device: run on all SMs (solo, §III-B1 case b) — also
                # the first-run profiling path when no profile exists.
                head = self._queue.pop()
                head.profiling_run = head.profile_key not in self.profiles
                self.solo_launches += 1
                self._m_solo.inc()
                profile = self._profile_of(head)
                self._decide(
                    "solo",
                    head,
                    classes=(profile.intensity.value,) if profile else (),
                    sms=self.device.num_sms,
                    reason="first-run profiling" if head.profiling_run else "device idle",
                )
                self._launch(head, self.gpu.all_sms())
                continue
            if not self._can_schedule_more():
                return
            # Corun: partition the device between the running kernel(s) and
            # the newcomer (§III-B1 case a).
            head = self._queue.pop()
            if len(self._running) > 1:
                self._admit_nway(head)
                continue
            running = self._running[0]
            head_profile = self._profile_of(head)
            running_profile = self._profile_of(running.ticket)
            run_sms, new_sms = self._split_device(running, head, running_profile, head_profile)
            if running.sms == new_sms and len(new_sms) == len(run_sms):
                # Equal-sized sides and the running kernel already occupies
                # the other one (e.g. identical-kernel pairs): swap roles
                # instead of migrating it for nothing.
                run_sms, new_sms = new_sms, run_sms
            if running.sms != run_sms:
                running.sms = run_sms
                self._note_resize(running.ticket.spec.name, run_sms)
                self.gpu.resize(running.handle, run_sms)
                self._log_allocation()
            self.corun_launches += 1
            self._m_corun.inc()
            self._decide(
                "corun",
                head,
                classes=(
                    head_profile.intensity.value,
                    running_profile.intensity.value,
                ),
                sms=len(new_sms),
                reason=(
                    f"Table I corun with {running.ticket.spec.name} "
                    f"({len(run_sms)}/{len(new_sms)} split)"
                ),
            )
            self._launch(head, new_sms)
