"""Kernelet-style slicing: tiling properties, identity, and invariants.

Three proof obligations for the slicing subsystem
(``repro/slate/slicing.py`` + the sliced dispatch path in
``repro/gpu/device.py``):

* the slicer's partition *exactly tiles* the grid — no gap, no overlap,
  no stray blocks — for every (grid, slice size) combination;
* a slice size >= the grid (the degenerate single-slice case) is
  **byte-identical** to the unsliced scheduler: same decision traces under
  every registered policy, same completion times, same counters;
* slice-boundary preemption and edge resizes never violate the mechanism
  invariants (SM capacity, disjoint grants, nothing starves), audited at
  every allocation change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, TITAN_XP
from repro.gpu.device import (
    ExecState,
    ExecutionMode,
    KernelWork,
    SimulatedGPU,
    SlicedExecution,
)
from repro.gpu.occupancy import BlockResources
from repro.sim import Environment
from repro.slate.policy import Table1Policy, policy_names
from repro.slate.scheduler import SlateScheduler, SlateTicket
from repro.slate.slicing import (
    DEFAULT_SLICES_PER_GRID,
    KernelSlicer,
    SliceConfigError,
    default_slice_blocks,
)
from repro.slate.taskqueue import TaskQueueConfigError

from tests.slate.difftrace import scheduler_trace
from tests.slate.test_policy_invariants import AuditingScheduler, MIXED

ALL_POLICIES = policy_names()

#: A slice size no benchmark grid reaches: forces exactly one slice.
WHOLE_GRID = 10**9


# -- slicer properties -------------------------------------------------------


@given(
    num_blocks=st.integers(min_value=1, max_value=10_000),
    slice_blocks=st.integers(min_value=1, max_value=12_000),
)
@settings(max_examples=200, deadline=None)
def test_slices_exactly_tile_grid(num_blocks, slice_blocks):
    slicer = KernelSlicer(num_blocks, slice_blocks)
    plan = slicer.plan()
    consumed = list(slicer)
    assert plan == consumed, "plan() and consumption disagree"
    assert plan[0].start == 0
    assert all(s.count >= 1 for s in plan)
    assert all(
        b.start == a.start + a.count for a, b in zip(plan, plan[1:])
    ), "slices leave a gap or overlap"
    assert sum(s.count for s in plan) == num_blocks
    assert [s.index for s in plan] == list(range(len(plan)))
    assert len(plan) == slicer.num_slices
    assert slicer.exhausted
    assert slicer.remaining_blocks == 0
    assert slicer.next_slice() is None


@given(
    num_blocks=st.integers(min_value=1, max_value=10_000),
    task_size=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_default_slice_blocks_bounds(num_blocks, task_size):
    size = default_slice_blocks(num_blocks, task_size)
    assert size >= max(1, task_size), "slice finer than one worker task"
    slicer = KernelSlicer(num_blocks, size)
    assert slicer.num_slices <= DEFAULT_SLICES_PER_GRID


def test_degenerate_configs_raise_typed_errors():
    for bad in (0, -1):
        with pytest.raises(SliceConfigError):
            KernelSlicer(bad, 4)
        with pytest.raises(SliceConfigError):
            KernelSlicer(100, bad)
        with pytest.raises(SliceConfigError):
            default_slice_blocks(bad)
    # The typed error chains into the task queue's (and ValueError).
    assert issubclass(SliceConfigError, TaskQueueConfigError)
    assert issubclass(SliceConfigError, ValueError)


def test_slice_larger_than_grid_is_one_slice():
    slicer = KernelSlicer(100, WHOLE_GRID)
    assert slicer.slice_blocks == 100
    assert slicer.num_slices == 1
    assert slicer.plan() == list(KernelSlicer(100, 100))


# -- device-level sliced dispatch --------------------------------------------


def make_gpu(**cost_overrides):
    env = Environment()
    costs = CostModel(**cost_overrides)
    return env, SimulatedGPU(env, TITAN_XP, costs)


def compute_work(name="k", num_blocks=48_000, **kw):
    return KernelWork(
        name=name,
        num_blocks=num_blocks,
        block=BlockResources(threads_per_block=128, registers_per_thread=32),
        flops_per_block=kw.pop("flops_per_block", 2e6),
        bytes_per_block=kw.pop("bytes_per_block", 1e5),
        **kw,
    )


COUNTER_FIELDS = (
    "start_time",
    "end_time",
    "blocks_executed",
    "flops",
    "bytes_l2",
    "bytes_dram",
    "instructions",
    "ldst",
    "mem_throttle_time",
    "busy_time",
    "resizes",
    "resize_stall",
)


def test_single_slice_launch_is_byte_identical_to_unsliced():
    work = compute_work()
    env1, gpu1 = make_gpu()
    h1 = gpu1.launch(work, mode=ExecutionMode.SLATE, task_size=10, inject_frac=0.03)
    c1 = env1.run(until=h1.done)
    env2, gpu2 = make_gpu()
    h2 = gpu2.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, inject_frac=0.03,
        slice_blocks=WHOLE_GRID,
    )
    c2 = env2.run(until=h2.done)
    assert env1.now == env2.now
    assert env1.stats.events_processed == env2.stats.events_processed
    for field in COUNTER_FIELDS:
        assert getattr(c1, field) == getattr(c2, field), field


def test_multi_slice_completes_all_blocks_and_counts_dispatches():
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, inject_frac=0.03,
        slice_blocks=6000,
    )
    counters = env.run(until=handle.done)
    assert counters.blocks_executed == pytest.approx(48_000)
    assert handle.slices_dispatched == 8
    assert env.stats.slice_dispatches == 8
    assert handle.state is ExecState.DONE
    assert handle.blocks_remaining == 0.0


def test_sliced_launch_pays_dispatch_gaps():
    work = compute_work()
    env1, gpu1 = make_gpu()
    h1 = gpu1.launch(work, mode=ExecutionMode.SLATE, task_size=10)
    env1.run(until=h1.done)
    env2, gpu2 = make_gpu()
    h2 = gpu2.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=6000
    )
    env2.run(until=h2.done)
    # Slicing costs real time (dispatch gaps + per-slice ragged waves) ...
    assert env2.now > env1.now
    # ... but at least the 7 inter-slice gaps are accounted.
    assert env2.now >= env1.now + 7 * gpu2.costs.slice_dispatch_overhead


def test_mid_slice_resize_applies_at_edge_with_zero_stall():
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=6000
    )
    env.timeout(3e-3).callbacks.append(
        lambda _e: gpu.resize(handle, gpu.sm_range(0, 14), notify=False)
    )
    counters = env.run(until=handle.done)
    assert counters.resizes == 1
    assert counters.resize_stall == 0.0, "edge resize must not drain-stall"
    assert handle.sm_ids == gpu.sm_range(0, 14)


def test_retreat_resize_still_stalls_unsliced_launches():
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch(work, mode=ExecutionMode.SLATE, task_size=10)
    env.timeout(3e-3).callbacks.append(
        lambda _e: gpu.resize(handle, gpu.sm_range(0, 14), notify=False)
    )
    counters = env.run(until=handle.done)
    expected = gpu.costs.retreat_latency + gpu.costs.kernel_launch_overhead
    assert counters.resizes == 1
    assert counters.resize_stall == pytest.approx(expected)


def test_final_slice_resize_falls_back_to_retreat():
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=WHOLE_GRID
    )
    env.timeout(3e-3).callbacks.append(
        lambda _e: gpu.resize(handle, gpu.sm_range(0, 10), notify=False)
    )
    counters = env.run(until=handle.done)
    expected = gpu.costs.retreat_latency + gpu.costs.kernel_launch_overhead
    assert counters.resizes == 1
    assert counters.resize_stall == pytest.approx(expected)


def test_pause_lands_at_slice_edge_and_resume_continues():
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=6000
    )
    observed = []
    env.timeout(3e-3).callbacks.append(
        lambda _e: (gpu.pause(handle), gpu.pause(handle))  # idempotent
    )
    env.timeout(9e-3).callbacks.append(
        lambda _e: (observed.append(handle.state), gpu.resume(handle))
    )
    counters = env.run(until=handle.done)
    assert observed == [ExecState.PAUSED]
    assert env.stats.slice_preempts == 1
    assert counters.blocks_executed == pytest.approx(48_000)
    assert handle.state is ExecState.DONE


def test_forced_pause_freezes_mid_slice():
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=6000
    )
    at_pause = []
    env.timeout(0.8e-3).callbacks.append(
        lambda _e: (
            gpu.pause(handle, at_edge=False),
            at_pause.append(
                (
                    handle.state,
                    handle.current,
                    handle.current.state if handle.current else None,
                )
            ),
        )
    )
    env.timeout(9e-3).callbacks.append(lambda _e: gpu.resume(handle))
    counters = env.run(until=handle.done)
    state, frozen_current, frozen_state = at_pause[0]
    assert state is ExecState.PAUSED
    # Forced freeze stops *inside* the slice: the in-flight slice is kept
    # and itself frozen (an edge pause would have retired it first).
    assert frozen_current is not None
    assert frozen_state is ExecState.PAUSED
    assert counters.blocks_executed == pytest.approx(48_000)


def test_resume_before_edge_cancels_pending_pause():
    """Resume racing ahead of a requested edge pause must cancel it.

    A VIP can complete while its victim's slice is still in flight: the
    scheduler resumes the victim *before* the edge the pause was headed
    for.  The stale pending pause must not fire at that edge — it would
    freeze the kernel with nobody left to resume it (the hang the
    hypothesis workload suite caught).
    """
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=6000
    )
    # Both land mid-first-slice: the edge pause is requested, then
    # cancelled by resume before any slice boundary is reached.
    env.timeout(0.5e-3).callbacks.append(lambda _e: gpu.pause(handle))
    env.timeout(0.8e-3).callbacks.append(lambda _e: gpu.resume(handle))
    counters = env.run(until=handle.done)
    assert env.stats.slice_preempts == 0, "cancelled pause must never fire"
    assert counters.blocks_executed == pytest.approx(48_000)
    assert handle.state is ExecState.DONE


def test_sliced_launch_requires_slate_mode():
    env, gpu = make_gpu()
    with pytest.raises(ValueError):
        gpu.launch_sliced(compute_work(), mode=ExecutionMode.HARDWARE)


def test_slice_registry_counters_mirror_stats():
    from repro.obs.registry import registry

    reg = registry()
    d0 = reg.counter("slice.dispatches").value
    p0 = reg.counter("slice.preempts").value
    work = compute_work()
    env, gpu = make_gpu()
    handle = gpu.launch_sliced(
        work, mode=ExecutionMode.SLATE, task_size=10, slice_blocks=6000
    )
    env.timeout(3e-3).callbacks.append(lambda _e: gpu.pause(handle))
    env.timeout(9e-3).callbacks.append(lambda _e: gpu.resume(handle))
    env.run(until=handle.done)
    assert reg.counter("slice.dispatches").value - d0 == 8
    assert reg.counter("slice.preempts").value - p0 == 1


# -- scheduler integration: byte-identity ------------------------------------

TRACE_WORKLOAD = [
    (0.0, "BS", 0, None),
    (0.2e-3, "RG", 1, None),
    (0.5e-3, "TR", 0, 40e-3),
    (0.9e-3, "MM", 2, None),
    (2.2e-3, "BS", 2, None),
    (3.0e-3, "RG", 0, 60e-3),
]


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_whole_grid_slicing_keeps_decision_traces_byte_identical(policy):
    """slicing on + slice >= grid  ==  slicing off, under every policy."""
    base_rows, base = scheduler_trace(
        TRACE_WORKLOAD, SlateScheduler, SlateTicket, policy=policy
    )
    sliced_rows, sliced = scheduler_trace(
        TRACE_WORKLOAD,
        SlateScheduler,
        SlateTicket,
        policy=policy,
        slicing=True,
        slice_blocks=WHOLE_GRID,
    )
    assert sliced_rows == base_rows
    assert sliced.env.now == base.env.now
    assert sliced.env.stats.events_processed == base.env.stats.events_processed


@pytest.mark.parametrize("policy", ("table1", "edf"))
def test_whole_grid_slicing_identity_survives_preemption(policy):
    workload = [
        (0.0, "TR", 0, None),
        (0.4e-3, "TR", 3, None),
        (4.0e-3, "BS", 1, None),
    ]
    base_rows, base = scheduler_trace(
        workload, SlateScheduler, SlateTicket, policy=policy,
        enable_preemption=True,
    )
    sliced_rows, sliced = scheduler_trace(
        workload, SlateScheduler, SlateTicket, policy=policy,
        enable_preemption=True, slicing=True, slice_blocks=WHOLE_GRID,
    )
    assert base.preemptions > 0, "scenario lost its teeth"
    assert sliced_rows == base_rows
    assert sliced.env.now == base.env.now


def test_slicing_off_is_the_default():
    _, sched = scheduler_trace(TRACE_WORKLOAD[:2], SlateScheduler, SlateTicket)
    assert sched.slicing is False
    assert sched.slice_blocks is None
    assert sched.env.stats.slice_dispatches == 0
    assert sched.env.stats.slice_preempts == 0


# -- scheduler integration: real slicing upholds the invariants --------------


def run_sliced_workload(
    policy,
    workload,
    enable_preemption=False,
    max_corun=2,
    slice_blocks=None,
):
    """Drive an AuditingScheduler with slicing *on* through ``workload``."""
    env = Environment()
    costs = CostModel()
    gpu = SimulatedGPU(env, TITAN_XP, costs)
    from repro.kernels.registry import by_name
    from repro.slate.profiler import ProfileTable, offline_profile

    profiles = ProfileTable(TITAN_XP)
    specs = {}
    for _, bench, _, _ in workload:
        if bench not in specs:
            specs[bench] = by_name(bench)
            profiles.put(
                specs[bench].name, offline_profile(specs[bench], TITAN_XP, costs)
            )
    sched = AuditingScheduler(
        env,
        gpu,
        TITAN_XP,
        costs,
        profiles=profiles,
        enable_preemption=enable_preemption,
        max_corun=max_corun,
        policy=policy,
        slicing=True,
        slice_blocks=slice_blocks,
    )
    tickets = []

    def arrival(env, at, spec, priority, deadline):
        if at > env.now:
            yield env.timeout(at - env.now)
        ticket = SlateTicket(
            spec=spec,
            profile_key=spec.name,
            done=env.event(),
            enqueued_at=env.now,
            priority=priority,
            task_size=10,
            deadline=deadline,
        )
        tickets.append(ticket)
        sched.submit(ticket)

    procs = [
        env.process(arrival(env, at, specs[bench], priority, deadline))
        for at, bench, priority, deadline in sorted(workload, key=lambda w: w[0])
    ]
    env.run(until=env.all_of(procs))
    env.run()
    return sched, tickets


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_sliced_workload_upholds_invariants(policy):
    sched, tickets = run_sliced_workload(policy, MIXED, max_corun=3)
    assert sched.waiting_count == 0 and sched.running_count == 0
    assert sched.env.stats.slice_dispatches > 0
    for t in tickets:
        assert t.done.triggered, f"{t.spec.name} starved under sliced {policy}"
        assert t.done.ok or t.rejected


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_slice_boundary_preemption_upholds_invariants(policy):
    workload = [
        (0.0, "TR", 0, None),
        (0.4e-3, "TR", 3, None),
        (4.0e-3, "BS", 1, None),
    ]
    sched, tickets = run_sliced_workload(
        policy, workload, enable_preemption=True
    )
    assert sched.waiting_count == 0 and sched.running_count == 0
    for t in tickets:
        assert t.done.triggered
        if t.preemptions:
            assert t.done.ok, f"preempted {t.spec.name} never resumed"
    if policy == "table1":
        assert sched.preemptions > 0


class _ForceRetreatPolicy(Table1Policy):
    """table1, but vetoes edge preemption (classic freeze instead)."""

    name = "table1"

    def preempt_at_slice(self, head, victim) -> bool:
        return False


def test_preempt_at_slice_veto_forces_classic_freeze():
    workload = [
        (0.0, "TR", 0, None),
        (0.4e-3, "TR", 3, None),
    ]
    sched, tickets = run_sliced_workload(
        _ForceRetreatPolicy(), workload, enable_preemption=True
    )
    assert sched.preemptions > 0
    # The veto means no edge preemption was recorded on the device.
    assert sched.env.stats.slice_preempts == 0
    for t in tickets:
        assert t.done.triggered and t.done.ok


entry = st.tuples(
    st.floats(min_value=0.0, max_value=10e-3, allow_nan=False),
    st.sampled_from(("BS", "GS", "MM", "RG", "TR")),
    st.integers(min_value=0, max_value=3),
    st.one_of(st.none(), st.floats(min_value=1e-4, max_value=50e-3)),
)


@pytest.mark.parametrize("policy", ("table1", "edf", "online-predictive"))
@given(workload=st.lists(entry, min_size=1, max_size=6))
@settings(max_examples=10, deadline=None)
def test_generated_sliced_workloads_drain_within_capacity(policy, workload):
    sched, tickets = run_sliced_workload(
        policy, workload, enable_preemption=True, max_corun=3
    )
    assert sched.waiting_count == 0 and sched.running_count == 0
    for t in tickets:
        assert t.done.triggered
        assert t.done.ok or t.rejected


# -- policy slice sizing -----------------------------------------------------


def test_edf_slices_deadline_launches_whole():
    sched, _ = run_sliced_workload("edf", [(0.0, "BS", 0, 80e-3)])
    # One launch, one deadline, sliced whole: exactly one slice dispatched.
    assert sched.env.stats.slice_dispatches == 1


def test_edf_slices_best_effort_finer_than_default():
    sched, _ = run_sliced_workload("edf", [(0.0, "BS", 0, None)])
    base, _ = run_sliced_workload("table1", [(0.0, "BS", 0, None)])
    assert (
        sched.env.stats.slice_dispatches > base.env.stats.slice_dispatches
    ), "edf best-effort launches should expose more edges than the default"


def test_online_predictive_sizes_slices_from_observations():
    # Two launches of the same kernel: the first has no observations (falls
    # back to the default sizing); the second sizes from the observed EMA.
    workload = [(0.0, "BS", 0, None), (60e-3, "BS", 0, None)]
    sched, tickets = run_sliced_workload("online-predictive", workload)
    assert all(t.done.ok for t in tickets)
    assert sched.policy.observations(tickets[0]) >= 1
    work = tickets[1].spec.work()
    quota = sched.policy.slice_quota(tickets[1], work)
    assert quota is not None
    assert 1 <= -(-work.num_blocks // quota) <= 64


def test_scheduler_rejects_degenerate_slice_blocks():
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    with pytest.raises(SliceConfigError):
        SlateScheduler(env, gpu, TITAN_XP, CostModel(), slice_blocks=0)
