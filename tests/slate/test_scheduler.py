"""Scheduler behaviour: selection, partitioning, dynamic resizing."""

import pytest

from repro.config import CostModel, TITAN_XP
from repro.gpu.device import SimulatedGPU
from repro.kernels import blackscholes, gaussian, quasirandom, transpose
from repro.sim import Environment
from repro.slate.profiler import offline_profile
from repro.slate.scheduler import SlateScheduler, SlateTicket


def make_scheduler(preload=()):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    sched = SlateScheduler(env, gpu, TITAN_XP, CostModel())
    for spec in preload:
        sched.profiles.put(spec.name, offline_profile(spec))
    return env, sched


def ticket(env, spec):
    return SlateTicket(
        spec=spec, profile_key=spec.name, done=env.event(), enqueued_at=env.now
    )


class TestSoloAndProfiling:
    def test_unknown_kernel_runs_solo_and_gets_profiled(self):
        env, sched = make_scheduler()
        spec = quasirandom(num_blocks=960)
        t = ticket(env, spec)
        sched.submit(t)
        env.run(until=t.done)
        assert t.profiling_run
        assert sched.solo_launches == 1
        assert "RG" in sched.profiles

    def test_idle_device_launches_on_all_sms(self):
        env, sched = make_scheduler(preload=[quasirandom()])
        t = ticket(env, quasirandom(num_blocks=960))
        sched.submit(t)
        assert sched.running_sms()["RG"] == tuple(range(30))
        env.run(until=t.done)


class TestCorunDecision:
    def test_complementary_pair_coruns_on_disjoint_sms(self):
        bs, rg = blackscholes(), quasirandom()
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        sms = sched.running_sms()
        assert set(sms["BS"]) & set(sms["RG"]) == set()
        assert len(sms["BS"]) + len(sms["RG"]) == 30
        assert sched.corun_launches == 1
        env.run(until=t1.done & t2.done)

    def test_interfering_pair_waits(self):
        """Two memory-intensive kernels (M_M x H_M) serialize."""
        bs, tr = blackscholes(), transpose()
        env, sched = make_scheduler(preload=[bs, tr])
        t1, t2 = ticket(env, bs), ticket(env, tr)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        assert sched.running_count == 1
        assert sched.waiting_count == 1
        env.run(until=t1.done & t2.done)
        assert sched.corun_launches == 0
        assert sched.solo_launches == 2

    def test_unprofiled_candidate_waits(self):
        bs = blackscholes()
        rg = quasirandom()
        env, sched = make_scheduler(preload=[bs])  # RG profile unknown
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        assert sched.running_count == 1  # no corun without a profile
        env.run(until=t1.done & t2.done)


class TestDynamicResizing:
    def test_running_kernel_shrinks_on_corun_arrival(self):
        bs, rg = blackscholes(), quasirandom()
        env, sched = make_scheduler(preload=[bs, rg])
        t1 = ticket(env, bs)
        sched.submit(t1)
        assert len(sched.running_sms()["BS"]) == 30
        env.run(until=1e-4)
        t2 = ticket(env, rg)
        sched.submit(t2)
        assert len(sched.running_sms()["BS"]) < 30
        assert sched.resizes >= 1
        env.run(until=t1.done & t2.done)

    def test_survivor_grows_after_grace(self):
        bs, rg = blackscholes(), quasirandom(num_blocks=4800)
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        env.run(until=t2.done)  # RG (smaller) finishes first
        assert len(sched.running_sms()["BS"]) < 30
        grace = sched.costs.grow_grace
        env.run(until=env.now + grace + 1e-4)
        assert sched.running_sms()["BS"] == tuple(range(30))
        env.run(until=t1.done)

    def test_grow_skipped_if_partner_returns_within_grace(self):
        bs, rg = blackscholes(), quasirandom(num_blocks=4800)
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        resizes_before = sched.resizes
        env.run(until=t2.done)
        # Partner relaunches immediately (within the grace window).
        t3 = ticket(env, quasirandom(num_blocks=4800))
        sched.submit(t3)
        env.run(until=t3.done)
        # Only the initial shrink happened; no grow-then-shrink churn.
        assert sched.resizes == resizes_before
        env.run(until=t1.done)

    def test_total_blocks_conserved_across_resizes(self):
        bs, rg = blackscholes(), quasirandom()
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        env.run(until=t1.done & t2.done)
        assert t1.counters.blocks_executed == pytest.approx(bs.grid.num_blocks)
        assert t2.counters.blocks_executed == pytest.approx(rg.grid.num_blocks)


class TestDecisionAccounting:
    def test_decisions_are_recorded(self):
        bs, rg = blackscholes(), quasirandom()
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        env.run(until=t1.done & t2.done)
        kinds = [d for _, d in sched.decisions]
        assert kinds.count("solo") == 1
        assert kinds.count("corun") == 1

    def test_gs_gs_runs_consecutively(self):
        """§V-E: GS-GS is M_M x M_M -> solo, yet gains from scheduling."""
        gs = gaussian(num_blocks=96_000)
        env, sched = make_scheduler(preload=[gs])
        t1, t2 = ticket(env, gs), ticket(env, gs)
        sched.submit(t1)
        env.run(until=1e-5)
        sched.submit(t2)
        env.run(until=t1.done & t2.done)
        assert sched.corun_launches == 0
        assert t2.started_at is not None
        assert t2.started_at >= t1.counters.end_time


class TestDecisionLog:
    def test_structured_decisions(self):
        bs, rg = blackscholes(), quasirandom()
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        env.run(until=t1.done & t2.done)
        kinds = [d.kind for d in sched.decision_log]
        assert kinds == ["solo", "corun"]
        solo, corun = sched.decision_log
        assert solo.kernel == "BS" and solo.sms == 30
        assert solo.reason == "device idle"
        assert corun.kernel == "RG"
        assert set(corun.classes) == {"L_C", "M_M"}
        assert 0 < corun.sms < 30
        assert "Table I corun with BS" in corun.reason

    def test_explain_renders(self):
        bs, rg = blackscholes(), quasirandom()
        env, sched = make_scheduler(preload=[bs, rg])
        t1, t2 = ticket(env, bs), ticket(env, rg)
        sched.submit(t1)
        env.run(until=1e-4)
        sched.submit(t2)
        env.run(until=t1.done & t2.done)
        out = sched.explain()
        assert "corun" in out and "SMs" in out and "ms" in out

    def test_profiling_run_reason(self):
        env, sched = make_scheduler()  # no preloaded profiles
        t = ticket(env, quasirandom(num_blocks=960))
        sched.submit(t)
        env.run(until=t.done)
        assert sched.decision_log[0].reason == "first-run profiling"
