"""Daemon/session integration tests: context funneling, IPC, injection."""

import pytest

from repro.kernels import blackscholes, quasirandom, sgemm
from repro.sim import Environment
from repro.slate import SlateRuntime


class TestSessionApi:
    def test_malloc_maps_shared_buffer(self):
        env = Environment()
        rt = SlateRuntime(env)
        s = rt.create_session("app")

        def app(env):
            ptr = yield from s.malloc(1 << 20)
            assert ptr in s.buffer_map.values()
            assert rt.server_context.allocated_bytes >= 1 << 20
            yield from s.free(ptr)
            assert not s.buffer_map

        env.run(until=env.process(app(env)))

    def test_two_clients_funnel_into_one_context(self):
        env = Environment()
        rt = SlateRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env):
            yield from s1.malloc(4096)
            yield from s2.malloc(8192)

        env.run(until=env.process(app(env)))
        assert rt.server_context.allocated_bytes == 4096 + 8192
        s1.close()
        assert rt.server_context.allocated_bytes == 8192

    def test_pipe_costs_accumulate(self):
        env = Environment()
        rt = SlateRuntime(env)
        s = rt.create_session("app")

        def app(env):
            ptr = yield from s.malloc(4096)
            yield from s.memcpy_h2d(4096)
            yield from s.free(ptr)

        env.run(until=env.process(app(env)))
        assert s.pipe.round_trips == 3
        assert s.buffers.handoffs == 2
        assert s.comm_time == pytest.approx(
            3 * rt.costs.pipe_roundtrip + 2 * rt.costs.shared_buffer_overhead
        )

    def test_memcpy_charges_no_payload_copy(self):
        """Shared buffers: doubling the payload only adds PCIe time."""
        env = Environment()
        rt = SlateRuntime(env)
        s = rt.create_session("app")
        times = []

        def app(env):
            for nbytes in (1 << 20, 2 << 20):
                t0 = env.now
                yield from s.memcpy_h2d(nbytes)
                times.append(env.now - t0)

        env.run(until=env.process(app(env)))
        fixed = rt.costs.pipe_roundtrip + rt.costs.shared_buffer_overhead
        pcie_delta = (1 << 20) / rt.pcie.host.pcie_bandwidth
        assert times[1] - times[0] == pytest.approx(pcie_delta, rel=1e-6)
        assert times[0] > fixed


class TestInjectionPath:
    def test_first_launch_compiles_then_caches(self):
        env = Environment()
        rt = SlateRuntime(env)
        rt.preload_profiles([quasirandom()])
        s = rt.create_session("app")
        spec = quasirandom(num_blocks=960)

        def app(env):
            yield from s.launch(spec)
            yield from s.synchronize()
            first_compile = s.compile_time
            yield from s.launch(spec)
            yield from s.synchronize()
            return first_compile, s.compile_time

        first, total = env.run(until=env.process(app(env)))
        assert first == pytest.approx(
            rt.costs.code_injection_time + rt.costs.nvrtc_compile_time
        )
        assert total == pytest.approx(first)  # second launch: cache hit
        assert rt.compiler.compile_count == 1

    def test_injected_source_stored(self):
        env = Environment()
        rt = SlateRuntime(env)
        rt.preload_profiles([sgemm()])
        s = rt.create_session("app")
        spec = sgemm(tiles=10)

        def app(env):
            yield from s.launch(spec)
            yield from s.synchronize()

        env.run(until=env.process(app(env)))
        src = rt.injected_sources["MM"]
        assert "atomicAdd(&slateIdx, SLATE_ITERS)" in src
        assert "sm_low" in src
        # MM is the 2D-grid kernel; its injected source reconstructs y.
        assert "slate_blockID.y" in src


class TestEndToEnd:
    def test_pair_coruns_through_full_stack(self):
        env = Environment()
        rt = SlateRuntime(env)
        bs, rg = blackscholes(), quasirandom()
        rt.preload_profiles([bs, rg])
        done = {}

        def app(env, name, spec, reps):
            s = rt.create_session(name)
            for _ in range(reps):
                yield from s.launch(spec)
                yield from s.synchronize()
            done[name] = env.now
            s.close()

        pa = env.process(app(env, "bs", bs, 5))
        pb = env.process(app(env, "rg", rg, 5))
        env.run(until=pa & pb)
        assert rt.scheduler.corun_launches > 0
        assert done["bs"] > 0 and done["rg"] > 0

    def test_first_run_profiling_enables_corun_later(self):
        """Without preloading, profiles build up and corun kicks in."""
        env = Environment()
        rt = SlateRuntime(env)
        bs, rg = blackscholes(), quasirandom()

        def app(env, name, spec, reps):
            s = rt.create_session(name)
            for _ in range(reps):
                yield from s.launch(spec)
                yield from s.synchronize()
            s.close()

        pa = env.process(app(env, "bs", bs, 4))
        pb = env.process(app(env, "rg", rg, 4))
        env.run(until=pa & pb)
        assert rt.scheduler.solo_launches >= 2  # the profiling runs
        assert rt.scheduler.corun_launches >= 1  # later launches corun
        assert "BS" in rt.profiles and "RG" in rt.profiles


class TestArgumentTranslation:
    """The daemon's hash table: client addresses -> GPU pointers (§IV-A1)."""

    def _session(self):
        env = Environment()
        rt = SlateRuntime(env)
        rt.preload_profiles([quasirandom()])
        return env, rt, rt.create_session("app")

    def test_client_address_translates(self):
        env, rt, s = self._session()

        def app(env):
            ptr = yield from s.malloc(4096)
            addr = next(iter(s.buffer_map))
            assert s.device_pointer(addr) is ptr
            translated = s.translate_args([addr, ptr])
            assert translated == [ptr, ptr]

        env.run(until=env.process(app(env)))

    def test_unmapped_address_rejected(self):
        from repro.slate.daemon import SlateArgumentError

        env, rt, s = self._session()

        def app(env):
            yield from s.malloc(4096)
            with pytest.raises(SlateArgumentError, match="not a mapped"):
                s.device_pointer(0xDEAD)

        env.run(until=env.process(app(env)))

    def test_freed_pointer_rejected_at_launch(self):
        from repro.slate.daemon import SlateArgumentError

        env, rt, s = self._session()

        def app(env):
            ptr = yield from s.malloc(4096)
            yield from s.free(ptr)
            with pytest.raises(SlateArgumentError, match="freed or foreign"):
                yield from s.launch(quasirandom(num_blocks=960), args=[ptr])

        env.run(until=env.process(app(env)))

    def test_foreign_pointer_rejected(self):
        from repro.slate.daemon import SlateArgumentError

        env = Environment()
        rt = SlateRuntime(env)
        rt.preload_profiles([quasirandom()])
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env):
            ptr = yield from s1.malloc(4096)
            with pytest.raises(SlateArgumentError, match="foreign"):
                s2.translate_args([ptr])

        env.run(until=env.process(app(env)))

    def test_non_pointer_argument_rejected(self):
        from repro.slate.daemon import SlateArgumentError

        env, rt, s = self._session()
        with pytest.raises(SlateArgumentError, match="neither"):
            s.translate_args([3.14])

    def test_launch_with_valid_args(self):
        env, rt, s = self._session()

        def app(env):
            ptr = yield from s.malloc(4096)
            ticket = yield from s.launch(quasirandom(num_blocks=960), args=[ptr])
            yield from s.synchronize()
            return ticket

        ticket = env.run(until=env.process(app(env)))
        assert ticket.counters is not None
