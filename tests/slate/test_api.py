"""C-header-style API facade tests."""

import pytest

from repro.kernels import quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.slate.api import (
    SLATE_MEMCPY_DEVICE_TO_HOST,
    SLATE_MEMCPY_HOST_TO_DEVICE,
    slate_finalize,
    slate_free,
    slate_init,
    slate_launch_kernel,
    slate_malloc,
    slate_memcpy,
    slate_synchronize,
)


def make_runtime():
    env = Environment()
    rt = SlateRuntime(env)
    rt.preload_profiles([quasirandom()])
    return env, rt


class TestLifecycle:
    def test_full_c_style_flow(self):
        env, rt = make_runtime()
        spec = quasirandom(num_blocks=960)

        def app(env):
            handle = slate_init(rt, "ported-app")
            buf = yield from slate_malloc(handle, 1 << 20)
            yield from slate_memcpy(handle, buf, 1 << 20, SLATE_MEMCPY_HOST_TO_DEVICE)
            ticket = yield from slate_launch_kernel(handle, spec, args=[buf])
            yield from slate_synchronize(handle)
            yield from slate_memcpy(handle, buf, 1 << 20, SLATE_MEMCPY_DEVICE_TO_HOST)
            yield from slate_free(handle, buf)
            slate_finalize(handle)
            return ticket

        ticket = env.run(until=env.process(app(env)))
        assert ticket.counters.blocks_executed == pytest.approx(960)
        assert rt.memory.used == 0

    def test_use_after_finalize_rejected(self):
        env, rt = make_runtime()
        handle = slate_init(rt, "app")
        slate_finalize(handle)
        slate_finalize(handle)  # idempotent
        with pytest.raises(RuntimeError, match="after slate_finalize"):
            list(slate_malloc(handle, 1024))

    def test_unknown_memcpy_direction(self):
        env, rt = make_runtime()

        def app(env):
            handle = slate_init(rt, "app")
            buf = yield from slate_malloc(handle, 1024)
            with pytest.raises(ValueError, match="direction"):
                yield from slate_memcpy(handle, buf, 1024, 99)
            slate_finalize(handle)

        env.run(until=env.process(app(env)))

    def test_priority_and_task_size_pass_through(self):
        env, rt = make_runtime()
        spec = quasirandom(num_blocks=960)

        def app(env):
            handle = slate_init(rt, "app")
            ticket = yield from slate_launch_kernel(
                handle, spec, task_size=5, priority=3
            )
            yield from slate_synchronize(handle)
            slate_finalize(handle)
            return ticket

        ticket = env.run(until=env.process(app(env)))
        assert ticket.task_size == 5
        assert ticket.priority == 3
