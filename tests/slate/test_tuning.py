"""Task-size auto-tuner tests."""

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.device import ExecutionMode, SimulatedGPU
from repro.kernels import blackscholes, gaussian, sgemm
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.slate.tuning import auto_task_size, predict_kernel_time


def measured_time(spec, task_size):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    handle = gpu.launch(
        spec.work(), mode=ExecutionMode.SLATE, task_size=task_size, inject_frac=0.03
    )
    return env.run(until=handle.done).elapsed


class TestPrediction:
    @pytest.mark.parametrize("task_size", [1, 5, 10, 50])
    def test_prediction_matches_executor(self, task_size):
        """The tuner's model is the executor's model: predictions match."""
        spec = gaussian()
        predicted = predict_kernel_time(spec, task_size)
        measured = measured_time(spec, task_size)
        assert predicted == pytest.approx(measured, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_kernel_time(gaussian(), 0)
        with pytest.raises(ValueError):
            auto_task_size(gaussian(), candidates=())


class TestChoices:
    def test_gs_prefers_large_tasks(self):
        choice = auto_task_size(gaussian())
        assert choice.task_size >= 10
        assert choice.improvement_over(1) > 1.0  # >2x better than size 1

    def test_bs_prefers_tiny_tasks(self):
        choice = auto_task_size(blackscholes())
        assert choice.task_size <= 2

    def test_choice_beats_default_when_measured(self):
        """The tuned size is at least as fast as the fixed default of 10,
        measured on the executor, for every paper benchmark."""
        from repro.kernels import BENCHMARKS

        for factory in BENCHMARKS.values():
            spec = factory()
            choice = auto_task_size(spec)
            tuned = measured_time(spec, choice.task_size)
            default = measured_time(spec, 10)
            assert tuned <= default * 1.005, spec.name

    def test_sweep_recorded(self):
        choice = auto_task_size(sgemm())
        assert set(choice.sweep) == {1, 2, 5, 10, 20, 50}
        assert choice.predicted_time == min(choice.sweep.values())


class TestDaemonIntegration:
    def test_auto_daemon_uses_tuned_sizes(self):
        env = Environment()
        rt = SlateRuntime(env, auto_task_size=True)
        gs = gaussian()
        rt.preload_profiles([gs])
        session = rt.create_session("app")

        def app(env):
            ticket = yield from session.launch(gs)
            yield from session.synchronize()
            return ticket

        ticket = env.run(until=env.process(app(env)))
        assert ticket.task_size == auto_task_size(gs).task_size
        assert ticket.task_size >= 10

    def test_explicit_size_overrides_tuner(self):
        env = Environment()
        rt = SlateRuntime(env, auto_task_size=True)
        gs = gaussian()
        rt.preload_profiles([gs])
        session = rt.create_session("app")

        def app(env):
            ticket = yield from session.launch(gs, task_size=3)
            yield from session.synchronize()
            return ticket

        assert env.run(until=env.process(app(env))).task_size == 3

    def test_default_daemon_sticks_to_ten(self):
        env = Environment()
        rt = SlateRuntime(env)
        gs = gaussian()
        rt.preload_profiles([gs])
        session = rt.create_session("app")

        def app(env):
            ticket = yield from session.launch(gs)
            yield from session.synchronize()
            return ticket

        assert env.run(until=env.process(app(env))).task_size == 10

    def test_auto_tuning_improves_gs_app(self):
        from repro.workloads.harness import app_for, run_solo

        default, _ = run_solo("Slate", app_for("GS"))
        tuned, _ = run_solo("Slate", app_for("GS"), auto_task_size=True)
        assert tuned.kernel_exec_time < default.kernel_exec_time


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    cfrac=st.floats(min_value=0.001, max_value=0.3),
    mfrac=st.floats(min_value=0.0, max_value=1.0),
    block_time=st.floats(min_value=1e-6, max_value=1e-4),
    task_size=st.sampled_from([1, 2, 5, 10, 25, 50]),
)
@settings(max_examples=60, deadline=None)
def test_prediction_matches_executor_on_random_kernels(
    cfrac, mfrac, block_time, task_size
):
    """The tuner's analytic model equals the fluid executor everywhere,
    not just on the calibrated benchmarks."""
    from repro.kernels import synthetic

    spec = synthetic(cfrac, mfrac, num_blocks=4800, block_time=block_time)
    predicted = predict_kernel_time(spec, task_size)
    measured = measured_time(spec, task_size)
    assert predicted == pytest.approx(measured, rel=0.05)
