"""Decision-epoch batching must be invisible to the scheduler.

The device defers the expensive part of every mutation (rate derivation,
completion-timer rescheduling, trace sampling) into one end-of-timestep
epoch flush (``SimulatedGPU._epoch_recompute``); ``REPRO_NO_EPOCH_BATCH=1``
restores the recompute-per-mutation seed behavior.  The contract is strict
equivalence: on any workload — in particular bursty same-timestamp
arrival storms, where a single epoch absorbs many submissions and
completions — the batched engine must make byte-identical scheduling
decisions to the sequential one, under every registered policy.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slate.policy import policy_names
from repro.slate.scheduler import SlateScheduler, SlateTicket

from tests.slate.difftrace import BENCHES, scheduler_trace

#: Arrival instants drawn from a tiny set so workloads collide heavily on
#: identical timestamps — the decision-epoch stress case.
INSTANTS = (0.0, 0.0, 0.0, 0.2e-3, 0.2e-3, 2.0e-3)

BURSTY = [
    (0.0, "BS", 0, None),
    (0.0, "RG", 1, None),
    (0.0, "TR", 0, 20e-3),
    (0.0, "MM", 2, None),
    (0.2e-3, "GS", 0, None),
    (0.2e-3, "BS", 3, 10e-3),
    (2.0e-3, "RG", 0, None),
]


def _trace(workload, **kwargs):
    rows, _ = scheduler_trace(workload, SlateScheduler, SlateTicket, **kwargs)
    return rows


def batched_and_sequential(workload, **kwargs):
    """The workload's decision trace with epoch batching on, then off."""
    saved = os.environ.pop("REPRO_NO_EPOCH_BATCH", None)
    try:
        batched = _trace(workload, **kwargs)
        os.environ["REPRO_NO_EPOCH_BATCH"] = "1"
        sequential = _trace(workload, **kwargs)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_EPOCH_BATCH", None)
        else:  # pragma: no cover - only when the caller pre-set the var
            os.environ["REPRO_NO_EPOCH_BATCH"] = saved
    return batched, sequential


@pytest.mark.parametrize("policy", policy_names())
def test_bursty_fixed_workload_equivalent(policy):
    batched, sequential = batched_and_sequential(
        BURSTY, policy=policy, enable_preemption=True
    )
    assert batched == sequential


entry = st.tuples(
    st.sampled_from(INSTANTS),
    st.sampled_from(BENCHES),
    st.integers(min_value=0, max_value=3),
    st.one_of(st.none(), st.floats(min_value=1e-3, max_value=50e-3)),
)


@pytest.mark.parametrize("policy", policy_names())
@given(workload=st.lists(entry, min_size=1, max_size=8))
@settings(max_examples=15, deadline=None)
def test_batched_equals_sequential_per_policy(policy, workload):
    batched, sequential = batched_and_sequential(
        workload, policy=policy, enable_preemption=True
    )
    assert batched == sequential


@given(workload=st.lists(entry, min_size=1, max_size=8))
@settings(max_examples=25, deadline=None)
def test_batched_equals_sequential_first_run_profiling(workload):
    """Profiling solo runs interleave with arrivals inside one instant."""
    batched, sequential = batched_and_sequential(workload, preload=False)
    assert batched == sequential


@given(workload=st.lists(entry, min_size=2, max_size=8))
@settings(max_examples=15, deadline=None)
def test_batched_equals_sequential_nway(workload):
    """Three-way corun admission churns resize/rebalance inside an epoch."""
    batched, sequential = batched_and_sequential(workload, max_corun=3)
    assert batched == sequential
