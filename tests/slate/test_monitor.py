"""System monitor tests (Fig. 2 step (e))."""

import pytest

from repro.kernels import blackscholes, quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.slate.monitor import SystemMonitor


class TestSampling:
    def test_samples_accumulate_and_report(self):
        env = Environment()
        rt = SlateRuntime(env, monitor_interval=0.5e-3)
        bs = blackscholes()
        rt.preload_profiles([bs])
        session = rt.create_session("app")

        def app(env):
            for _ in range(3):
                yield from session.launch(bs)
                yield from session.synchronize()

        env.run(until=env.process(app(env)))
        rt.monitor.stop()
        assert len(rt.monitor.samples) >= 5
        out = rt.monitor.report()
        assert "mean SM coverage" in out
        # BS holds the whole device while running solo.
        busy = [s for s in rt.monitor.samples if s.running == 1]
        assert busy and all(s.covered_sms == 30 for s in busy)

    def test_interval_validation(self):
        env = Environment()
        rt = SlateRuntime(env)
        with pytest.raises(ValueError):
            SystemMonitor(env, rt.scheduler, interval=0)

    def test_stop_is_idempotent(self):
        env = Environment()
        rt = SlateRuntime(env, monitor_interval=1e-3)
        env.run(until=5e-3)
        rt.monitor.stop()
        rt.monitor.stop()
        n = len(rt.monitor.samples)
        env.run(until=20e-3)
        assert len(rt.monitor.samples) == n  # no more sampling


class TestReclamation:
    def test_monitor_reclaims_when_grow_disabled(self):
        """The safety net: with the event-driven grow off, the monitor
        still returns freed SMs to the survivor."""
        env = Environment()
        rt = SlateRuntime(env, enable_grow=False, monitor_interval=0.4e-3)
        bs, rg = blackscholes(), quasirandom(num_blocks=9600)
        rt.preload_profiles([bs, rg])

        def bs_app(env):
            session = rt.create_session("bs")
            ticket = yield from session.launch(bs)
            yield from session.synchronize()
            return ticket

        def rg_app(env):
            session = rt.create_session("rg")
            yield env.timeout(0.2e-3)
            yield from session.launch(rg)
            yield from session.synchronize()

        pb = env.process(bs_app(env))
        pr = env.process(rg_app(env))
        env.run(until=pb & pr)
        assert rt.monitor.reclaims >= 1
        # BS ended up back on the whole device after RG finished.
        grew = any(
            alloc.get("BS") == (0, 29)
            for t, alloc in rt.scheduler.allocation_log[-5:]
        )
        assert grew

    def test_no_reclaim_when_disabled(self):
        env = Environment()
        rt = SlateRuntime(env, enable_grow=False)
        monitor = SystemMonitor(env, rt.scheduler, interval=0.4e-3, reclaim=False)
        bs, rg = blackscholes(), quasirandom(num_blocks=9600)
        rt.preload_profiles([bs, rg])

        def app(env, name, spec, delay=0.0):
            session = rt.create_session(name)
            yield env.timeout(delay)
            yield from session.launch(spec)
            yield from session.synchronize()

        pa = env.process(app(env, "bs", bs))
        pb = env.process(app(env, "rg", rg, delay=0.2e-3))
        env.run(until=pa & pb)
        monitor.stop()
        assert monitor.reclaims == 0
