"""System monitor tests (Fig. 2 step (e))."""

import pytest

from repro.kernels import blackscholes, quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.slate.monitor import SystemMonitor


class TestSampling:
    def test_samples_accumulate_and_report(self):
        env = Environment()
        rt = SlateRuntime(env, monitor_interval=0.5e-3)
        bs = blackscholes()
        rt.preload_profiles([bs])
        session = rt.create_session("app")

        def app(env):
            for _ in range(3):
                yield from session.launch(bs)
                yield from session.synchronize()

        env.run(until=env.process(app(env)))
        rt.monitor.stop()
        assert len(rt.monitor.samples) >= 5
        out = rt.monitor.report()
        assert "mean SM coverage" in out
        # BS holds the whole device while running solo.
        busy = [s for s in rt.monitor.samples if s.running == 1]
        assert busy and all(s.covered_sms == 30 for s in busy)

    def test_interval_validation(self):
        env = Environment()
        rt = SlateRuntime(env)
        with pytest.raises(ValueError):
            SystemMonitor(env, rt.scheduler, interval=0)

    def test_stop_is_idempotent(self):
        env = Environment()
        rt = SlateRuntime(env, monitor_interval=1e-3)
        env.run(until=5e-3)
        rt.monitor.stop()
        rt.monitor.stop()
        n = len(rt.monitor.samples)
        env.run(until=20e-3)
        assert len(rt.monitor.samples) == n  # no more sampling

    def test_sample_limit_bounds_history(self):
        env = Environment()
        rt = SlateRuntime(env)
        monitor = SystemMonitor(env, rt.scheduler, interval=1e-3, sample_limit=4)
        env.run(until=10.2e-3)
        monitor.stop()
        assert len(monitor.samples) == 4
        assert monitor.samples_total == 10
        # The retained window is the newest samples.
        assert [s.time for s in monitor.samples] == pytest.approx(
            [7e-3, 8e-3, 9e-3, 10e-3]
        )
        assert "4 samples" in monitor.report()

    def test_unbounded_history_by_default(self):
        env = Environment()
        rt = SlateRuntime(env)
        monitor = SystemMonitor(env, rt.scheduler, interval=1e-3)
        env.run(until=10.2e-3)
        monitor.stop()
        assert len(monitor.samples) == monitor.samples_total == 10

    def test_registry_counts_samples(self):
        from repro.obs.registry import registry

        before = registry().counter("monitor.samples").value
        env = Environment()
        rt = SlateRuntime(env, monitor_interval=1e-3)
        env.run(until=5.2e-3)
        rt.monitor.stop()
        assert registry().counter("monitor.samples").value == before + 5

    def test_samples_appear_in_trace(self):
        from repro.obs import trace as obs_trace

        env = Environment()
        rt = SlateRuntime(env, monitor_interval=1e-3)
        with obs_trace.capture() as sink:
            env.run(until=3.2e-3)
        rt.monitor.stop()
        samples = sink.of_track("monitor", "state")
        assert len(samples) == 3
        assert all(e.ph == "C" for e in samples)
        assert samples[0].args.keys() == {"running", "waiting", "covered_sms"}


class TestReclamation:
    def test_monitor_reclaims_when_grow_disabled(self):
        """The safety net: with the event-driven grow off, the monitor
        still returns freed SMs to the survivor."""
        env = Environment()
        rt = SlateRuntime(env, enable_grow=False, monitor_interval=0.4e-3)
        bs, rg = blackscholes(), quasirandom(num_blocks=9600)
        rt.preload_profiles([bs, rg])

        def bs_app(env):
            session = rt.create_session("bs")
            ticket = yield from session.launch(bs)
            yield from session.synchronize()
            return ticket

        def rg_app(env):
            session = rt.create_session("rg")
            yield env.timeout(0.2e-3)
            yield from session.launch(rg)
            yield from session.synchronize()

        from repro.obs import trace as obs_trace

        pb = env.process(bs_app(env))
        pr = env.process(rg_app(env))
        with obs_trace.capture() as sink:
            env.run(until=pb & pr)
        assert rt.monitor.reclaims >= 1
        # Reclaims are mirrored into the registry and the trace stream.
        from repro.obs.registry import registry

        assert registry().counter("monitor.reclaims").value >= rt.monitor.reclaims
        assert len(sink.of_name("reclaim")) == rt.monitor.reclaims
        # BS ended up back on the whole device after RG finished.
        grew = any(
            alloc.get("BS") == (0, 29)
            for t, alloc in rt.scheduler.allocation_log[-5:]
        )
        assert grew

    def test_no_reclaim_when_disabled(self):
        env = Environment()
        rt = SlateRuntime(env, enable_grow=False)
        monitor = SystemMonitor(env, rt.scheduler, interval=0.4e-3, reclaim=False)
        bs, rg = blackscholes(), quasirandom(num_blocks=9600)
        rt.preload_profiles([bs, rg])

        def app(env, name, spec, delay=0.0):
            session = rt.create_session(name)
            yield env.timeout(delay)
            yield from session.launch(spec)
            yield from session.synchronize()

        pa = env.process(app(env, "bs", bs))
        pb = env.process(app(env, "rg", rg, delay=0.2e-3))
        env.run(until=pa & pb)
        monitor.stop()
        assert monitor.reclaims == 0
