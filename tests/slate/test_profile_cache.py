"""Property-based tests for profile persistence and the on-disk cache.

Two invariants the caching layer stands on:

* serialization is **lossless** — a profile that round-trips through
  ``save_profiles``/``load_profiles`` or :class:`ProfileCache` compares
  equal, floats bit for bit (JSON's shortest-repr float encoding);
* cache keys are **exact** — any change to the kernel spec, device or
  cost model fingerprints to a different key, so hits can never be stale.
"""

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import JsonCache
from repro.config import CostModel, TITAN_XP, fingerprint
from repro.gpu.occupancy import BlockResources
from repro.kernels.kernel import GridDim, KernelSpec
from repro.slate.classify import IntensityClass
from repro.slate.profiler import (
    KernelProfile,
    ProfileCache,
    ProfileTable,
    load_profiles,
    save_profiles,
)

finite = st.floats(
    min_value=0.0, max_value=1e15, allow_nan=False, allow_infinity=False
)

profiles = st.builds(
    KernelProfile,
    name=st.text(
        alphabet=st.characters(whitelist_categories=("L", "N"), max_codepoint=0x2FF),
        min_size=1,
        max_size=16,
    ),
    gflops=finite,
    mem_bw=finite,
    throttle_fraction=st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    ),
    intensity=st.sampled_from(IntensityClass),
    elapsed=finite,
)


def spec_for(name: str) -> KernelSpec:
    return KernelSpec(
        name=name,
        grid=GridDim(64),
        block=BlockResources(128),
        flops_per_block=1e6,
        bytes_per_block=1e5,
    )


class TestProfileRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(table_profiles=st.dictionaries(st.text(min_size=1, max_size=8), profiles, max_size=5))
    def test_save_load_is_lossless(self, table_profiles):
        table = ProfileTable(TITAN_XP)
        for key, profile in table_profiles.items():
            table.put(key, profile)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "profiles.json"
            save_profiles(table, path)
            loaded = load_profiles(path, TITAN_XP)
        assert len(loaded) == len(table)
        for key, profile in table_profiles.items():
            assert loaded.get(key) == profile  # dataclass equality: exact floats

    @settings(max_examples=25, deadline=None)
    @given(profile=profiles)
    def test_profile_cache_round_trip_is_lossless(self, profile):
        spec, costs = spec_for("synthetic"), CostModel()
        with tempfile.TemporaryDirectory() as tmp:
            cache = ProfileCache(root=tmp, enabled=True)
            cache.put(profile, spec, TITAN_XP, costs, 10, "device")
            assert cache.get(spec, TITAN_XP, costs, 10, "device") == profile
            # Any key ingredient change misses instead of serving this entry.
            assert cache.get(spec, TITAN_XP, costs, 11, "device") is None
            assert cache.get(spec, TITAN_XP, costs, 10, "per_sm") is None
            assert cache.get(spec.scaled(0.5), TITAN_XP, costs, 10, "device") is None


class TestJsonCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        payload=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.floats(allow_nan=False, allow_infinity=False) | st.integers() | st.text(max_size=8),
            max_size=6,
        ),
        key=st.lists(st.integers() | st.text(max_size=8), min_size=1, max_size=4),
    )
    def test_put_get_round_trip(self, payload, key):
        with tempfile.TemporaryDirectory() as tmp:
            cache = JsonCache("t", root=tmp, enabled=True)
            cache.put(payload, *key)
            assert cache.get(*key) == payload
            assert cache.hits == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = JsonCache("t", root=tmp_path, enabled=True)
        cache.put({"x": 1}, "k")
        path = cache.path_for("k")
        path.write_text("{not json")
        assert cache.get("k") is None
        assert not path.exists()
        assert cache.misses == 1

    def test_clear_empties_namespace_only(self, tmp_path):
        a = JsonCache("a", root=tmp_path, enabled=True)
        b = JsonCache("b", root=tmp_path, enabled=True)
        a.put({"x": 1}, "k")
        b.put({"y": 2}, "k")
        assert a.clear() == 1
        assert len(a) == 0 and len(b) == 1


class TestFingerprint:
    def test_stable_across_calls_and_processes(self):
        # Pure function of the canonical JSON: pin one value so an
        # accidental canonicalization change shows up here.
        fp = fingerprint("x", 1, 2.5)
        assert fp == fingerprint("x", 1, 2.5)
        assert len(fp) == 24 and int(fp, 16) >= 0

    def test_sensitive_to_every_dataclass_field(self):
        from dataclasses import replace

        base = fingerprint(TITAN_XP)
        assert fingerprint(replace(TITAN_XP, num_sms=29)) != base
        assert fingerprint(replace(TITAN_XP, sm_bw_limit=60.8001e9)) != base
        assert fingerprint(CostModel()) != base  # different type, same-ish shape

    def test_float_exactness_through_json(self):
        # JSON round-trips doubles exactly via shortest repr — the property
        # byte-identical cached results depend on.
        for value in (0.1, 1 / 3, 547.6e9, 2**-52):
            assert json.loads(json.dumps(value)) == value
