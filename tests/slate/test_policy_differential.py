"""Differential decision-trace harness: refactored scheduler vs the seed.

The policy refactor's proof obligation is behavioral, not structural:
with the default ``table1`` policy the mechanism-only scheduler must make
*byte-identical decisions* to the pre-refactor seed — same kinds, same
SM grants, same reason strings, same timestamps.  Three layers of proof:

1. **Pinned goldens** — the seed scheduler's decision traces for the
   paper's Figure 4 scenario, the Table-I class-representative workload,
   and a randomized arrival mix were captured *before* the refactor
   (``tests/slate/goldens/decision_trace_*.json``).  The live scheduler
   must still reproduce all three exactly.
2. **Frozen-seed differential** — ``_seed_scheduler.py`` is a verbatim
   copy of the seed implementation; fixed workloads replay against both
   schedulers and the traces are compared row for row.
3. **Property-based differential** — hypothesis generates arrival/
   priority/deadline workloads (including first-run profiling and
   preemption variants) and both schedulers must agree on every one.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slate.scheduler import SlateScheduler, SlateTicket

from tests.slate import _seed_scheduler
from tests.slate.difftrace import (
    BENCHES,
    fig4_trace,
    load_golden,
    scheduler_trace,
    tab1_trace,
)


def random42_workload():
    """The randomized golden's workload (captured pre-refactor, seed 42)."""
    rng = random.Random(42)
    return [
        (rng.random() * 8e-3, BENCHES[rng.randrange(5)], rng.randrange(3), None)
        for _ in range(24)
    ]


def seed_trace(workload, **kwargs):
    rows, _ = scheduler_trace(
        workload, _seed_scheduler.SlateScheduler, _seed_scheduler.SlateTicket, **kwargs
    )
    return rows


def live_trace(workload, **kwargs):
    rows, _ = scheduler_trace(workload, SlateScheduler, SlateTicket, **kwargs)
    return rows


# -- layer 1: pinned pre-refactor goldens ------------------------------------


def test_fig4_trace_matches_seed_golden():
    assert fig4_trace() == load_golden("decision_trace_fig4")


def test_tab1_trace_matches_seed_golden():
    assert tab1_trace() == load_golden("decision_trace_tab1")


def test_randomized_trace_matches_seed_golden():
    rows = live_trace(random42_workload(), enable_preemption=True)
    assert rows == load_golden("decision_trace_random42")


# -- layer 2: frozen-seed differential on fixed workloads --------------------

BURSTY = [
    (0.0, "BS", 0, None),
    (0.0, "RG", 0, None),
    (0.1e-3, "TR", 1, None),
    (0.3e-3, "MM", 0, None),
    (0.3e-3, "GS", 2, None),
    (2.0e-3, "BS", 0, None),
    (2.1e-3, "RG", 2, None),
    (6.0e-3, "TR", 0, None),
]


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"enable_preemption": True},
        {"preload": False},
        {"max_corun": 3},
        {"partition_strategy": "even"},
    ],
    ids=["default", "preemption", "first-run-profiling", "nway", "even-split"],
)
def test_bursty_workload_differential(kwargs):
    assert live_trace(BURSTY, **kwargs) == seed_trace(BURSTY, **kwargs)


def test_differential_rejects_a_wrong_policy():
    """The harness has teeth: a non-default policy diverges on this mix."""
    assert live_trace(BURSTY, policy="mps-leftover") != seed_trace(BURSTY)


# -- layer 3: property-based differential ------------------------------------

arrival = st.floats(min_value=0.0, max_value=12e-3, allow_nan=False)
entry = st.tuples(
    arrival,
    st.sampled_from(BENCHES),
    st.integers(min_value=0, max_value=3),
    # table1 ignores deadlines entirely; generating them proves the live
    # scheduler's deadline plumbing cannot perturb default decisions (the
    # seed ticket has no deadline field, so it never sees them).
    st.one_of(st.none(), st.floats(min_value=1e-3, max_value=50e-3)),
)
workloads = st.lists(entry, min_size=1, max_size=10)


@given(workload=workloads)
@settings(max_examples=60, deadline=None)
def test_table1_matches_seed_on_generated_workloads(workload):
    assert live_trace(workload) == seed_trace(workload)


@given(workload=workloads)
@settings(max_examples=40, deadline=None)
def test_table1_matches_seed_with_preemption(workload):
    # Strict row-for-row parity: the same-instant preemption/completion
    # race fix is backported into the frozen seed (the one sanctioned
    # edit there), so preemption-enabled traces must match exactly.
    assert live_trace(workload, enable_preemption=True) == seed_trace(
        workload, enable_preemption=True
    )


def test_preemption_race_crash_parity():
    """Pin the fixed same-instant preemption/completion race behavior.

    Four same-instant arrivals where a priority-1 ticket would preempt a
    tenant whose completion event already fired this timestep used to
    crash the scheduler: ``gpu.pause`` no-ops on the already-draining
    victim, the entry moves to ``_preempted``, and the pending completion
    callback's ``_running.remove`` raises ValueError.  Preemption
    candidates are now restricted to device-side RUNNING executions (in
    the live scheduler and, backported, in the frozen seed), so the
    workload completes; the VIP is served without a bogus preemption —
    the drained tenant frees the device at the same instant.
    """
    workload = [
        (0.0, "BS", 0, None),
        (0.0, "BS", 0, None),
        (0.0, "RG", 1, None),
        (0.0, "BS", 1, None),
    ]
    rows = live_trace(workload, enable_preemption=True)
    assert rows == seed_trace(workload, enable_preemption=True)
    assert len(rows) == len(workload)
    # No preemption decision appears: the race victim was never eligible
    # (row layout: [time, kind, kernel, classes, sms, reason]).
    assert all(row[1] != "preempt" for row in rows)


@given(workload=st.lists(entry, min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_table1_matches_seed_with_first_run_profiling(workload):
    assert live_trace(workload, preload=False) == seed_trace(workload, preload=False)
