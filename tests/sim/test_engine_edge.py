"""Edge-path tests for the DES engine: rarely-hit branches, nasty orders."""

import pytest

from repro.sim import Environment, Event, Interrupt, Resource, Store, Tracer
from repro.sim.engine import EmptySchedule
from repro.sim.events import ConditionValue
from repro.sim.interrupts import SimulationError


class TestRunUntilEdges:
    def test_run_until_already_processed_event_returns_value(self):
        env = Environment()
        ev = env.event()
        ev.succeed("早い")
        env.run()  # processes ev
        assert ev.processed
        assert env.run(until=ev) == "早い"

    def test_run_until_already_processed_failed_event_raises(self):
        env = Environment()
        ev = env.event()
        ev.fail(KeyError("boom"))
        ev.defuse()
        env.run()
        with pytest.raises(KeyError):
            env.run(until=ev)

    def test_run_until_failing_process_raises_its_exception(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            raise OSError("disk")

        p = env.process(proc(env))
        with pytest.raises(OSError, match="disk"):
            env.run(until=p)

    def test_run_until_time_equal_to_now_is_noop(self):
        env = Environment()
        env.run(until=0)
        assert env.now == 0.0

    def test_clock_stops_exactly_at_until_before_events_there(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(5)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5)
        # simpy semantics: stop *before* processing events at `until`.
        assert fired == []
        env.run()
        assert fired == [5.0]


class TestRunUntilBoundaries:
    """run(until=...) at exact boundaries: now, the past, never-firing."""

    def test_run_until_now_after_advancing_is_noop(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(5)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5)
        assert env.now == 5.0 and fired == []  # stopped *before* t=5 events
        # until == now: returns immediately, still without processing the
        # pending t=5 event (simpy boundary semantics).
        assert env.run(until=env.now) is None
        assert env.now == 5.0
        assert fired == []
        # The event is intact and fires on the next real run.
        env.run(until=7)
        assert fired == [5.0]

    def test_run_until_in_the_past_raises(self):
        env = Environment()
        env.timeout(3)
        env.run()
        assert env.now == 3.0
        with pytest.raises(ValueError, match="before current time"):
            env.run(until=1.0)

    def test_run_until_untriggered_event_raises_on_empty_schedule(self):
        env = Environment()
        never = env.event()
        env.timeout(1)  # some unrelated work, then the queue drains
        with pytest.raises(SimulationError, match="ended before the awaited event"):
            env.run(until=never)
        # The queue really drained before giving up.
        assert env.now == 1.0
        assert not never.triggered

    def test_run_until_untriggered_event_on_already_empty_schedule(self):
        env = Environment()
        with pytest.raises(SimulationError, match="ended before the awaited event"):
            env.run(until=env.event())
        assert env.now == 0.0

    def test_run_until_time_beyond_last_event_reaches_that_time(self):
        env = Environment()
        env.timeout(2)
        assert env.run(until=10) is None
        # The numeric stop event itself is scheduled, so the clock lands
        # exactly on `until` even though no user event lives there.
        assert env.now == 10.0

    def test_run_until_already_processed_failed_event_raises_each_time(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("sticky"))
        ev.defuse()
        env.run()
        assert ev.processed
        # The stored failure is re-raised on every later await, not consumed.
        for _ in range(2):
            with pytest.raises(RuntimeError, match="sticky"):
                env.run(until=ev)


class TestEventEdges:
    def test_trigger_copies_outcome(self):
        env = Environment()
        src, dst = env.event(), env.event()
        src.succeed(41)
        dst.trigger(src)
        env.run()
        assert dst.value == 41

    def test_condition_value_mapping_interface(self):
        env = Environment()
        a, b = env.timeout(1, value="a"), env.timeout(2, value="b")

        def proc(env):
            result = yield env.all_of([a, b])
            return result

        p = env.process(proc(env))
        result: ConditionValue = env.run(until=p)
        assert a in result and b in result
        assert result[a] == "a"
        assert len(result) == 2
        assert list(result.keys()) == [a, b]
        assert dict(result.items())[b] == "b"
        with pytest.raises(KeyError):
            _ = result[env.event()]

    def test_condition_over_prefailed_event(self):
        env = Environment()
        bad = env.event()
        bad.fail(ValueError("pre"))
        bad.defuse()
        env.run()  # bad is processed (and defused)

        def proc(env):
            try:
                yield env.all_of([bad, env.timeout(1)])
            except ValueError:
                return "caught"

        p = env.process(proc(env))
        env.run()
        assert p.value == "caught"

    def test_schedule_negative_delay_rejected(self):
        env = Environment()
        ev = env.event()
        ev._ok = True
        ev._value = None
        with pytest.raises(ValueError):
            env.schedule(ev, delay=-0.5)


class TestTimeoutPooling:
    """The Timeout free list must be invisible to user-observable behavior."""

    def _churn(self, env, reps=50):
        def proc(env):
            for _ in range(reps):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()

    def test_pool_is_fed_and_reused(self):
        env = Environment()
        self._churn(env)
        assert env.stats.timeouts_pooled > 0
        assert env.stats.timeouts_reused > 0

    def test_event_ids_monotonic_across_pool_reuse(self):
        """Recycled timeouts draw fresh eids; the sequence never resets."""
        env = Environment()
        observed = []

        def proc(env):
            for _ in range(200):
                observed.append(env._eid)
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert env.stats.timeouts_reused > 0
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed)
        # ids keep growing (plain int: no overflow, no wraparound)
        assert env._eid >= 200

    def test_pooled_timeout_carries_fresh_value(self):
        env = Environment()
        values = []

        def proc(env):
            for i in range(30):
                values.append((yield env.timeout(1.0, value=i)))

        env.process(proc(env))
        env.run()
        assert values == list(range(30))

    def test_user_held_timeouts_never_recycled(self):
        """A live reference keeps the instance out of the free list."""
        env = Environment()
        held = []

        def proc(env):
            for i in range(20):
                t = env.timeout(1.0, value=i)
                held.append(t)
                yield t

        env.process(proc(env))
        env.run()
        assert env.stats.timeouts_pooled == 0
        assert [t.value for t in held] == list(range(20))

    def test_peek_reports_pooled_timeout_schedule(self):
        env = Environment()
        self._churn(env, reps=5)
        assert env.peek() == float("inf")
        t = env.timeout(2.5)
        # Whether or not t came from the pool, it is queued at now + delay.
        assert env.peek() == env.now + 2.5
        env.run()
        assert t.processed

    def test_negative_delay_fresh_timeout_names_event(self):
        env = Environment()
        with pytest.raises(ValueError, match=r"while scheduling <Timeout delay=-1\.5>"):
            env.timeout(-1.5)

    def test_negative_delay_pooled_timeout_names_event(self):
        env = Environment()
        self._churn(env)
        assert env._timeout_pool
        pool_size = len(env._timeout_pool)
        with pytest.raises(ValueError, match=r"while scheduling <Timeout delay=-2\.0>"):
            env.timeout(-2.0)
        # The popped instance went back to the free list.
        assert len(env._timeout_pool) == pool_size

    def test_schedule_negative_delay_names_event(self):
        env = Environment()
        ev = env.event()
        ev._ok = True
        ev._value = None
        with pytest.raises(ValueError, match=r"while scheduling <Event"):
            env.schedule(ev, delay=-0.5)


class TestProcessEdges:
    def test_process_finishing_instantly(self):
        env = Environment()

        def proc(env):
            return 7
            yield  # pragma: no cover

        p = env.process(proc(env))
        env.run()
        assert p.value == 7

    def test_interrupt_queued_before_process_starts(self):
        """Interrupting a just-created process delivers on first resume."""
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(10)
                return "slept"
            except Interrupt as i:
                return ("early", i.cause)

        p = env.process(victim(env))
        p.interrupt("now")
        env.run()
        assert p.value in (("early", "now"), "slept")
        # Deterministically: the init event fires first, then the
        # interrupt lands while the victim waits on its timeout.
        assert p.value == ("early", "now")

    def test_double_interrupt_delivers_both(self):
        env = Environment()
        causes = []

        def victim(env):
            for _ in range(2):
                try:
                    yield env.timeout(10)
                except Interrupt as i:
                    causes.append(i.cause)
            yield env.timeout(0)
            return causes

        p = env.process(victim(env))

        def attacker(env):
            yield env.timeout(1)
            p.interrupt("one")
            p.interrupt("two")

        env.process(attacker(env))
        env.run()
        assert p.value == ["one", "two"]

    def test_target_property(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        env.run(until=1)
        assert p.target is not None
        assert p.is_alive


class TestMiscEdges:
    def test_empty_schedule_step(self):
        env = Environment()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_tracer_limit_trims_oldest(self):
        tracer = Tracer(limit=10)
        env = Environment(tracer=tracer)
        for i in range(25):
            env.timeout(float(i))
        env.run()
        assert len(tracer) <= 10
        # The survivors are the most recent records.
        assert tracer.records[-1].time == 24.0

    def test_tracer_counts_dropped_records(self):
        tracer = Tracer(limit=10)
        env = Environment(tracer=tracer)
        for i in range(25):
            env.timeout(float(i))
        env.run()
        # Every processed event is either retained or counted as dropped —
        # truncation is observable, never silent.
        assert tracer.dropped > 0
        assert len(tracer) + tracer.dropped == 25

    def test_tracer_without_truncation_drops_nothing(self):
        tracer = Tracer()
        env = Environment(tracer=tracer)
        for i in range(5):
            env.timeout(float(i))
        env.run()
        assert tracer.dropped == 0

    def test_tracer_limit_one_stays_bounded(self):
        tracer = Tracer(limit=1)
        env = Environment(tracer=tracer)
        for i in range(5):
            env.timeout(float(i))
        env.run()
        assert len(tracer) == 1
        assert tracer.dropped == 4

    def test_dropped_count_reaches_env_stats(self):
        tracer = Tracer(limit=10)
        env = Environment(tracer=tracer)
        for i in range(25):
            env.timeout(float(i))
        env.run()
        assert env.stats.trace_dropped == tracer.dropped > 0

    def test_resource_release_of_unknown_request_is_safe(self):
        env = Environment()
        res = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        req = other.request()
        # Releasing a foreign request neither grants nor corrupts.
        res.release(req)
        assert res.count == 0

    def test_store_len(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            yield store.put(1)
            yield store.put(2)

        env.run(until=env.process(proc(env)))
        assert len(store) == 2
