"""Tests for Resource/PriorityResource and the Store family."""

import pytest

from repro.sim import (
    Environment,
    FilterStore,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_exclusive_access_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, name, hold):
            with res.request() as req:
                yield req
                log.append((name, "in", env.now))
                yield env.timeout(hold)
                log.append((name, "out", env.now))

        env.process(user(env, res, "a", 3))
        env.process(user(env, res, "b", 2))
        env.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 3.0),
            ("b", "in", 3.0),
            ("b", "out", 5.0),
        ]

    def test_capacity_two_allows_overlap(self):
        env = Environment()
        res = Resource(env, capacity=2)
        entered = []

        def user(env):
            with res.request() as req:
                yield req
                entered.append(env.now)
                yield env.timeout(5)

        for _ in range(3):
            env.process(user(env))
        env.run()
        assert entered == [0.0, 0.0, 5.0]

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1)
        assert res.count == 1
        assert res.queue_length == 1

    def test_cancel_pending_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        got = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env):
            req = res.request()
            yield env.timeout(1)
            req.cancel()  # withdraw before grant

        def patient(env):
            yield env.timeout(2)
            with res.request() as req:
                yield req
                got.append(env.now)

        env.process(holder(env))
        env.process(impatient(env))
        env.process(patient(env))
        env.run()
        # Patient acquires right when holder releases; impatient never held.
        assert got == [10.0]

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, name, arrive):
            yield env.timeout(arrive)
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        for i, name in enumerate("abcd"):
            env.process(user(env, name, i * 0.1))
        env.run()
        assert order == ["a", "b", "c", "d"]


class TestPriorityResource:
    def test_priority_order(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, name, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        def spawn(env):
            # Hold the resource, then release with three queued users.
            with res.request(priority=0) as req:
                yield req
                env.process(user(env, "low", 5))
                env.process(user(env, "high", 1))
                env.process(user(env, "mid", 3))
                yield env.timeout(1)

        env.process(spawn(env))
        env.run()
        assert order == ["high", "mid", "low"]


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append((item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert [g[0] for g in got] == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (item, env.now)

        def producer(env):
            yield env.timeout(7)
            yield store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == ("late", 7.0)

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a-in", env.now))
            yield store.put("b")
            log.append(("b-in", env.now))

        def consumer(env):
            yield env.timeout(5)
            item = yield store.get()
            log.append((item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("a-in", 0.0) in log
        assert ("b-in", 5.0) in log

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)


class TestFilterStore:
    def test_filter_selects_matching_item(self):
        env = Environment()
        store = FilterStore(env)

        def producer(env):
            yield store.put({"kind": "x", "n": 1})
            yield store.put({"kind": "y", "n": 2})

        def consumer(env):
            item = yield store.get(lambda it: it["kind"] == "y")
            return item["n"]

        env.process(producer(env))
        c = env.process(consumer(env))
        env.run()
        assert c.value == 2
        assert len(store.items) == 1

    def test_blocked_filter_does_not_starve_other_getters(self):
        env = Environment()
        store = FilterStore(env)

        def never(env):
            yield store.get(lambda it: it == "never-matches")

        def wants_a(env):
            item = yield store.get(lambda it: it == "a")
            return (item, env.now)

        env.process(never(env))
        w = env.process(wants_a(env))

        def producer(env):
            yield env.timeout(1)
            yield store.put("a")

        env.process(producer(env))
        env.run(until=10)
        assert w.value == ("a", 1.0)


class TestPriorityStore:
    def test_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env):
            for v in (5, 1, 3):
                yield store.put(v)

        def consumer(env):
            yield env.timeout(1)
            for _ in range(3):
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [1, 3, 5]

    def test_ties_are_fifo_stable(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env):
            yield store.put((1, "first"))
            yield store.put((1, "second"))

        def consumer(env):
            yield env.timeout(1)
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [(1, "first"), (1, "second")]
