"""Property-based tests (hypothesis) for the DES engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Tracer


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_clock_is_monotonic_over_arbitrary_timeouts(delays):
    """The simulated clock never moves backwards."""
    tracer = Tracer()
    env = Environment(tracer=tracer)
    for d in delays:
        env.timeout(d)
    env.run()
    times = tracer.times()
    assert all(a <= b for a, b in zip(times, times[1:]))
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
def test_simultaneous_and_ordered_events_fire_in_schedule_order(delays):
    """Events at equal timestamps are processed in scheduling (FIFO) order."""
    env = Environment()
    fired = []

    def proc(env, idx, delay):
        yield env.timeout(delay)
        fired.append((env.now, idx))

    for idx, d in enumerate(delays):
        env.process(proc(env, idx, d))
    env.run()
    # Sort stability: for equal times, index order must be preserved.
    assert fired == sorted(fired, key=lambda t: (t[0], t[1]))
    assert len(fired) == len(delays)


@given(
    seed_delays=st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=10, allow_nan=False),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_identical_programs_produce_identical_timelines(seed_delays):
    """Two environments running the same program agree event-for-event."""

    def build():
        tracer = Tracer()
        env = Environment(tracer=tracer)

        def worker(env, delay, reps):
            for _ in range(reps):
                yield env.timeout(delay)

        for delay, reps in seed_delays:
            env.process(worker(env, delay, reps))
        env.run()
        return [(r.time, r.kind) for r in tracer], env.now

    first, second = build(), build()
    assert first == second


@given(
    n_waiters=st.integers(min_value=1, max_value=20),
    hold=st.floats(min_value=0.01, max_value=5, allow_nan=False),
    capacity=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50)
def test_resource_work_conservation(n_waiters, hold, capacity):
    """N equal jobs through a k-server take ceil(N/k) * hold total time."""
    import math

    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=capacity)

    def job(env):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    for _ in range(n_waiters):
        env.process(job(env))
    env.run()
    expected = math.ceil(n_waiters / capacity) * hold
    assert abs(env.now - expected) < 1e-9 * max(1.0, expected)


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_for_any_items(items):
    from repro.sim import Store

    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items
