"""Condition-event (AnyOf/AllOf) edge cases.

Covers the constructor-time evaluation paths: empty iterables, members that
are already triggered or already processed at creation time, and failed
members (which the condition must defuse before propagating the failure).
"""

import pytest

from repro.sim import Environment
from repro.sim.events import ConditionValue


class TestEmptyConditions:
    def test_empty_any_of_triggers_immediately(self):
        env = Environment()

        def proc(env):
            return (yield env.any_of([]))

        p = env.process(proc(env))
        env.run()
        assert isinstance(p.value, ConditionValue)
        assert len(p.value) == 0
        assert env.now == 0.0

    def test_empty_all_of_triggers_immediately(self):
        env = Environment()

        def proc(env):
            return (yield env.all_of([]))

        p = env.process(proc(env))
        env.run()
        assert len(p.value) == 0
        assert env.now == 0.0

    def test_empty_condition_from_generator_argument(self):
        env = Environment()
        cond = env.any_of(iter([]))
        assert cond.triggered
        env.run()
        assert cond.processed


class TestAlreadyTriggeredMembers:
    def test_any_of_with_processed_member_fires_without_waiting(self):
        env = Environment()
        done = env.event()
        done.succeed("ready")
        env.run()  # process `done`
        assert done.processed

        def proc(env):
            result = yield env.any_of([done, env.timeout(100)])
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value[done] == "ready"
        # The condition fired off the already-processed member, so the
        # clock never had to reach the long timeout... but the queue still
        # drains it.  The *decision* was made at t=0.
        assert done in p.value

    def test_triggered_but_unprocessed_member_does_not_count_early(self):
        """A Timeout is triggered at creation yet must not satisfy AnyOf
        before it is actually processed."""
        env = Environment()
        late = env.timeout(5, value="late")
        early = env.timeout(1, value="early")
        cond = env.any_of([late, early])
        assert late.triggered and not late.processed
        assert not cond.triggered

        def proc(env):
            return (yield cond)

        p = env.process(proc(env))
        env.run()
        assert early in p.value and late not in p.value
        assert p.value[early] == "early"

    def test_all_of_mixing_processed_and_pending_members(self):
        env = Environment()
        first = env.event()
        first.succeed(1)
        env.run()

        def proc(env):
            return (yield env.all_of([first, env.timeout(3, value=2)]))

        p = env.process(proc(env))
        env.run()
        assert env.now == 3.0
        assert p.value.values() == [1, 2]

    def test_condition_value_preserves_member_order(self):
        env = Environment()
        b = env.timeout(2, value="b")
        a = env.timeout(1, value="a")

        def proc(env):
            return (yield env.all_of([b, a]))

        p = env.process(proc(env))
        env.run()
        # Order follows the iterable passed in, not completion order.
        assert p.value.keys() == [b, a]


class TestFailedMembers:
    def test_any_of_failed_member_propagates_and_defuses(self):
        env = Environment()
        bad = env.event()

        def failer(env):
            yield env.timeout(1)
            bad.fail(RuntimeError("member down"))

        env.process(failer(env))

        def waiter(env):
            try:
                yield env.any_of([bad, env.timeout(10)])
            except RuntimeError as exc:
                return ("caught", str(exc))

        p = env.process(waiter(env))
        env.run()  # must not re-raise: the condition defused the member
        assert p.value == ("caught", "member down")

    def test_all_of_fails_fast_on_first_member_failure(self):
        env = Environment()
        bad = env.event()

        def failer(env):
            yield env.timeout(1)
            bad.fail(ValueError("early failure"))

        env.process(failer(env))

        def waiter(env):
            try:
                yield env.all_of([env.timeout(5, value="slow"), bad])
            except ValueError:
                return env.now

        p = env.process(waiter(env))
        env.run()
        # AllOf failed at t=1, without waiting for the slow member.
        assert p.value == 1.0

    def test_prefailed_defused_member_fails_condition_at_creation(self):
        env = Environment()
        bad = env.event()
        bad.fail(KeyError("pre"))
        bad.defuse()
        env.run()
        assert bad.processed

        def waiter(env):
            try:
                yield env.any_of([bad, env.timeout(1)])
            except KeyError:
                return "caught"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught"

    def test_member_failing_after_condition_fired_needs_own_defuse(self):
        """A late failure is outside the condition's responsibility."""
        env = Environment()
        slow_bad = env.event()

        def failer(env):
            yield env.timeout(5)
            slow_bad.fail(RuntimeError("late"))
            slow_bad.defuse()  # nobody is listening anymore

        env.process(failer(env))

        def waiter(env):
            return (yield env.any_of([env.timeout(1, value="fast"), slow_bad]))

        p = env.process(waiter(env))
        env.run()
        assert "fast" in p.value.values()

    def test_operator_composition_matches_constructors(self):
        env = Environment()
        a = env.timeout(1, value="a")
        b = env.timeout(2, value="b")

        def proc(env):
            return (yield a | b)

        def proc_all(env):
            return (yield env.timeout(1, value="c") & env.timeout(2, value="d"))

        p1 = env.process(proc(env))
        p2 = env.process(proc_all(env))
        env.run()
        assert "a" in p1.value.values()
        assert p2.value.values() == ["c", "d"]
