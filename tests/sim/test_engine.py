"""Unit tests for the discrete-event environment and event primitives."""

import pytest

from repro.sim import Environment, Event, Interrupt, Timeout, Tracer
from repro.sim.engine import EmptySchedule
from repro.sim.interrupts import SimulationError


class TestClockAndTimeouts:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(3.5)

        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(3.5)

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        times = []

        def proc(env):
            for d in (1.0, 2.0, 0.5):
                yield env.timeout(d)
                times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [pytest.approx(1.0), pytest.approx(3.0), pytest.approx(3.5)]

    def test_zero_delay_timeout(self):
        env = Environment()

        def proc(env):
            yield env.timeout(0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()

        def proc(env):
            got = yield env.timeout(1, value="payload")
            return got

        p = env.process(proc(env))
        env.run()
        assert p.value == "payload"

    def test_run_until_time_stops_clock(self):
        env = Environment()

        def proc(env):
            while True:
                yield env.timeout(1)

        env.process(proc(env))
        env.run(until=10)
        assert env.now == pytest.approx(10)

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_step_on_empty_schedule(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == pytest.approx(2.0)

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")


class TestEvents:
    def test_succeed_and_value(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        ev.succeed(42)
        assert ev.triggered and ev.ok
        env.run()
        assert ev.processed
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_propagates_to_run(self):
        env = Environment()
        env.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        env.run()  # no raise

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return "finished"

        p = env.process(proc(env))
        assert env.run(until=p) == "finished"
        assert env.now == pytest.approx(2)

    def test_run_until_never_triggered_event_raises(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(until=ev)


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return 99

        p = env.process(proc(env))
        env.run()
        assert p.value == 99

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_waits_on_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(5)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        p = env.process(parent(env))
        env.run()
        assert p.value == (5.0, "child-result")

    def test_exception_in_process_fails_process(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            raise ValueError("inner")

        env.process(proc(env))
        with pytest.raises(ValueError, match="inner"):
            env.run()

    def test_waiter_receives_child_exception(self):
        env = Environment()

        def child(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(parent(env))
        env.run()
        assert p.value == "caught inner"

    def test_yield_non_event_fails(self):
        env = Environment()

        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("early")

        def proc(env):
            yield env.timeout(3)
            value = yield ev  # processed long ago
            return value

        p = env.process(proc(env))
        env.run()
        assert p.value == "early"
        assert env.now == pytest.approx(3)

    def test_simultaneous_events_fifo_order(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(1)
            order.append(name)

        for name in "abc":
            env.process(proc(env, name))
        env.run()
        assert order == ["a", "b", "c"]


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        def interrupter(env, victim):
            yield env.timeout(3)
            victim.interrupt("retreat")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == ("interrupted", "retreat", 3.0)

    def test_interrupt_dead_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def sleeper(env):
            yield env.timeout(100)

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt("kill")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        with pytest.raises(Interrupt):
            env.run()

    def test_interrupted_process_can_continue(self):
        env = Environment()

        def worker(env):
            done = 0
            while done < 3:
                try:
                    yield env.timeout(10)
                    done += 1
                except Interrupt:
                    # Resume waiting after the interruption.
                    pass
            return (done, env.now)

        def pester(env, victim):
            yield env.timeout(5)
            victim.interrupt()

        w = env.process(worker(env))
        env.process(pester(env, w))
        env.run()
        # Interrupt at t=5 aborts the first 10s wait; three full waits follow.
        assert w.value == (3, pytest.approx(35.0))

    def test_interrupt_cause_accessible(self):
        exc = Interrupt({"reason": "resize", "sms": (0, 9)})
        assert exc.cause == {"reason": "resize", "sms": (0, 9)}


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(2, value="a")
            t2 = env.timeout(5, value="b")
            result = yield env.all_of([t1, t2])
            return (env.now, result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == (5.0, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(2, value="fast")
            t2 = env.timeout(5, value="slow")
            result = yield env.any_of([t1, t2])
            return (env.now, result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == (2.0, ["fast"])

    def test_operator_composition(self):
        env = Environment()

        def proc(env):
            res = yield env.timeout(1, value=1) & env.timeout(2, value=2)
            return (env.now, sorted(res.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (2.0, [1, 2])

    def test_or_operator(self):
        env = Environment()

        def proc(env):
            res = yield env.timeout(1, value=1) | env.timeout(2, value=2)
            return (env.now, res.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == (1.0, [1])

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            res = yield env.all_of([])
            return (env.now, len(res))

        p = env.process(proc(env))
        env.run()
        assert p.value == (0.0, 0)

    def test_condition_failure_propagates(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1)
            raise KeyError("inside")

        def waiter(env):
            try:
                yield env.all_of([env.process(failer(env)), env.timeout(10)])
            except KeyError:
                return "caught"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught"

    def test_cross_environment_events_rejected(self):
        env1, env2 = Environment(), Environment()
        t1 = env1.timeout(1)
        t2 = env2.timeout(1)
        with pytest.raises(SimulationError):
            env1.all_of([t1, t2])


class TestTracer:
    def test_tracer_records_processed_events(self):
        tracer = Tracer()
        env = Environment(tracer=tracer)

        def proc(env):
            yield env.timeout(1)
            yield env.timeout(2)

        env.process(proc(env))
        env.run()
        kinds = [r.kind for r in tracer]
        assert "Timeout" in kinds
        assert len(tracer.of_kind("Timeout")) == 2
        assert tracer.times() == sorted(tracer.times())

    def test_tracer_predicate_filters(self):
        tracer = Tracer(predicate=lambda e: isinstance(e, Timeout))
        env = Environment(tracer=tracer)

        def proc(env):
            yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert all(r.kind == "Timeout" for r in tracer)
