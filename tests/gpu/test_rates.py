"""Tests for the pure rate-derivation function (shared by device + predictor)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TITAN_XP, CostModel
from repro.gpu.cache import LocalityModel
from repro.gpu.rates import RateInput, SchedulingMode, derive_rates


def make_input(
    key="k",
    flops=1e6,
    bytes_pb=0.0,
    n_sms=30,
    blocks_per_sm=16,
    mode=SchedulingMode.HARDWARE,
    task_size=1,
    parallelism=None,
    **kw,
):
    defaults = dict(
        locality=LocalityModel(),
        dram_efficiency=1.0,
        min_block_time=0.0,
        inject_frac=0.0,
        order_factor=1.0,
    )
    defaults.update(kw)
    return RateInput(
        key=key,
        flops_per_block=flops,
        bytes_per_block=bytes_pb,
        mode=mode,
        blocks_per_sm=blocks_per_sm,
        n_sms=n_sms,
        parallelism=parallelism if parallelism is not None else blocks_per_sm * n_sms,
        task_size=task_size,
        **defaults,
    )


class TestSingleKernel:
    def test_compute_bound_rate(self):
        costs = CostModel(block_launch_overhead=0.0)
        inp = make_input(flops=4e6, bytes_pb=0.0)
        out = derive_rates([inp], TITAN_XP, costs)["k"]
        block_time = 4e6 / (TITAN_XP.sm_flops / 16)
        assert out.block_time == pytest.approx(block_time, rel=1e-9)
        assert out.rate == pytest.approx(480 / block_time, rel=1e-9)
        assert out.throttle == 0.0

    def test_memory_bound_throttles(self):
        costs = CostModel(block_launch_overhead=0.0)
        inp = make_input(flops=0.0, bytes_pb=4e6)
        out = derive_rates([inp], TITAN_XP, costs)["k"]
        assert out.throttle > 0.3
        # Achieved DRAM rate equals capacity.
        achieved = out.rate * out.dram_bytes_per_block
        assert achieved == pytest.approx(TITAN_XP.dram_bandwidth, rel=1e-6)

    def test_latency_floor(self):
        inp = make_input(flops=1.0, min_block_time=1e-3)
        out = derive_rates([inp], TITAN_XP, CostModel())["k"]
        assert out.block_time >= 1e-3

    def test_slate_pull_amortization(self):
        costs = CostModel(block_launch_overhead=0.0)
        s1 = make_input(mode=SchedulingMode.SLATE, task_size=1, flops=1e4)
        s10 = make_input(mode=SchedulingMode.SLATE, task_size=10, flops=1e4)
        out1 = derive_rates([s1], TITAN_XP, costs)["k"]
        out10 = derive_rates([s10], TITAN_XP, costs)["k"]
        assert out1.block_time - out10.block_time == pytest.approx(
            costs.atomic_latency * 0.9, rel=1e-6
        )

    def test_empty_input(self):
        assert derive_rates([], TITAN_XP, CostModel()) == {}


class TestTwoKernels:
    def test_compute_pair_independent(self):
        a = make_input(key="a", flops=4e6, n_sms=15)
        b = make_input(key="b", flops=4e6, n_sms=15)
        paired = derive_rates([a, b], TITAN_XP, CostModel())
        solo = derive_rates([a], TITAN_XP, CostModel())
        assert paired["a"].rate == pytest.approx(solo["a"].rate, rel=1e-9)

    def test_memory_pair_contends(self):
        a = make_input(key="a", flops=0.0, bytes_pb=4e6, n_sms=15)
        b = make_input(key="b", flops=0.0, bytes_pb=4e6, n_sms=15)
        paired = derive_rates([a, b], TITAN_XP, CostModel())
        solo = derive_rates([a], TITAN_XP, CostModel())
        assert paired["a"].rate < 0.6 * solo["a"].rate
        assert paired["a"].throttle > solo["a"].throttle

    def test_interference_penalty_slows_even_unthrottled_kernels(self):
        """A moderate-BW kernel gets slower when a hog streams beside it."""
        costs = CostModel()
        # DRAM-bound victim at ~40% of peak demand.
        victim = make_input(
            key="v", flops=0.0, bytes_pb=4e6, n_sms=4, min_block_time=0.0
        )
        hog = make_input(key="h", flops=0.0, bytes_pb=4e6, n_sms=26)
        solo = derive_rates([victim], TITAN_XP, costs)["v"]
        paired = derive_rates([victim, hog], TITAN_XP, costs)["v"]
        assert paired.rate < solo.rate

    def test_interference_disabled_restores_fair_sharing(self):
        costs = CostModel(dram_interference_penalty=0.0)
        a = make_input(key="a", flops=0.0, bytes_pb=4e6, n_sms=15)
        b = make_input(key="b", flops=0.0, bytes_pb=4e6, n_sms=15)
        out = derive_rates([a, b], TITAN_XP, costs)
        total = sum(
            o.rate * o.dram_bytes_per_block for o in out.values()
        )
        assert total == pytest.approx(TITAN_XP.dram_bandwidth, rel=1e-6)


@given(
    n_kernels=st.integers(min_value=1, max_value=5),
    bytes_pb=st.floats(min_value=0, max_value=1e7),
    flops=st.floats(min_value=0, max_value=1e8),
    data=st.data(),
)
@settings(max_examples=100)
def test_rates_always_positive_and_bounded(n_kernels, bytes_pb, flops, data):
    """Invariants: positive finite rates; combined DRAM within capacity."""
    sms = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=10),
            min_size=n_kernels,
            max_size=n_kernels,
        )
    )
    inputs = [
        make_input(key=i, flops=flops + 1.0, bytes_pb=bytes_pb, n_sms=n)
        for i, n in enumerate(sms)
    ]
    out = derive_rates(inputs, TITAN_XP, CostModel())
    total_dram = 0.0
    for o in out.values():
        assert o.rate > 0
        assert o.block_time > 0
        assert 0 <= o.throttle <= 1
        total_dram += o.rate * o.dram_bytes_per_block
    assert total_dram <= TITAN_XP.dram_bandwidth * 1.001


@given(n_small=st.integers(min_value=1, max_value=14))
def test_more_sms_never_slower(n_small):
    """Monotonicity: a kernel alone never slows down with more SMs."""
    small = make_input(key="k", flops=1e6, bytes_pb=1e5, n_sms=n_small)
    big = make_input(key="k", flops=1e6, bytes_pb=1e5, n_sms=n_small + 1)
    out_small = derive_rates([small], TITAN_XP, CostModel())["k"]
    out_big = derive_rates([big], TITAN_XP, CostModel())["k"]
    assert out_big.rate >= out_small.rate - 1e-9
