"""Property-based tests for the epoch-fluid executor's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TITAN_XP, CostModel
from repro.gpu.device import ExecutionMode, KernelWork, SimulatedGPU
from repro.gpu.occupancy import BlockResources
from repro.sim import Environment


@st.composite
def work_strategy(draw):
    threads = draw(st.sampled_from([64, 128, 256]))
    return KernelWork(
        name="prop",
        num_blocks=draw(st.integers(min_value=1, max_value=5000)),
        block=BlockResources(threads_per_block=threads, registers_per_thread=32),
        flops_per_block=draw(st.floats(min_value=0, max_value=5e6)),
        bytes_per_block=draw(st.floats(min_value=0, max_value=2e6)),
        min_block_time=draw(st.floats(min_value=0, max_value=50e-6)),
        time_cv=draw(st.floats(min_value=0, max_value=0.3)),
    )


def run_one(work, mode=ExecutionMode.HARDWARE, task_size=1, sms=30):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    handle = gpu.launch(work, sm_ids=range(sms), mode=mode, task_size=task_size)
    counters = env.run(until=handle.done)
    return counters, env.now


@given(work=work_strategy())
@settings(max_examples=80, deadline=None)
def test_block_conservation_and_counter_consistency(work):
    """Every block executes exactly once; counters scale with blocks."""
    counters, now = run_one(work)
    assert counters.blocks_executed == pytest.approx(work.num_blocks, rel=1e-6)
    assert counters.flops == pytest.approx(
        work.num_blocks * work.flops_per_block, rel=1e-6
    )
    assert counters.bytes_l2 == pytest.approx(
        work.num_blocks * work.bytes_per_block, rel=1e-6
    )
    assert counters.bytes_dram <= counters.bytes_l2 + 1e-6
    assert 0 < counters.elapsed <= now
    assert 0 <= counters.mem_throttle_fraction <= 1


@given(work=work_strategy(), task_size=st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_slate_mode_conserves_blocks_for_any_task_size(work, task_size):
    counters, _ = run_one(work, mode=ExecutionMode.SLATE, task_size=task_size)
    assert counters.blocks_executed == pytest.approx(work.num_blocks, rel=1e-6)


@given(work=work_strategy())
@settings(max_examples=40, deadline=None)
def test_fluid_executor_is_deterministic(work):
    a, _ = run_one(work)
    b, _ = run_one(work)
    assert a.elapsed == b.elapsed
    assert a.bytes_dram == b.bytes_dram


@given(work=work_strategy(), n_small=st.integers(min_value=1, max_value=29))
@settings(max_examples=40, deadline=None)
def test_more_sms_never_hurt_a_solo_kernel(work, n_small):
    small, _ = run_one(work, sms=n_small)
    big, _ = run_one(work, sms=n_small + 1)
    # Near-monotone: the partial-wave tail is an approximation whose
    # absolute size scales with the (parallelism-dependent) block time, so
    # a marginal SM can cost up to ~10% on knife-edge grid/slot alignments
    # of very short runs (2 waves); real grids sit far from this bound.
    assert big.elapsed <= small.elapsed * 1.12


@given(
    work=work_strategy(),
    resize_fraction=st.floats(min_value=0.05, max_value=0.9),
    new_sms=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_resize_never_loses_or_duplicates_blocks(work, resize_fraction, new_sms):
    """Resizing at an arbitrary point preserves block conservation."""
    # Baseline duration to time the resize mid-flight.
    base, _ = run_one(work, mode=ExecutionMode.SLATE, task_size=10)

    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    handle = gpu.launch(work, mode=ExecutionMode.SLATE, task_size=10)

    def resizer(env):
        yield env.timeout(max(1e-9, base.elapsed * resize_fraction))
        yield gpu.resize(handle, range(new_sms))

    env.process(resizer(env))
    counters = env.run(until=handle.done)
    assert counters.blocks_executed == pytest.approx(work.num_blocks, rel=1e-6)


@given(
    work_a=work_strategy(),
    work_b=work_strategy(),
    split=st.integers(min_value=1, max_value=29),
)
@settings(max_examples=40, deadline=None)
def test_corun_dram_never_exceeds_device_peak(work_a, work_b, split):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    ha = gpu.launch(work_a, sm_ids=range(split))
    hb = gpu.launch(work_b, sm_ids=range(split, 30))
    env.run(until=ha.done & hb.done)
    for h in (ha, hb):
        c = h.counters
        if c.elapsed > 0:
            assert c.dram_throughput <= TITAN_XP.dram_bandwidth * 1.001
    # Total DRAM traffic cannot exceed peak bandwidth times the makespan.
    makespan = max(ha.counters.end_time, hb.counters.end_time)
    total = ha.counters.bytes_dram + hb.counters.bytes_dram
    assert total <= TITAN_XP.dram_bandwidth * makespan * 1.001
