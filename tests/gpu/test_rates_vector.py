"""The vectorized rate path must be bit-identical to the scalar reference.

``_derive_rates_vector`` takes one numpy pass over the positionised
signature matrix; ``_derive_rates_scalar`` is the reference semantics.
The contract is *bit* equality (the experiment goldens and the decision
trace are byte-frozen), so every comparison here is ``==`` on raw floats,
never ``approx``.  Also pinned: the ``_VEC_MIN`` dispatch threshold, the
``REPRO_NO_NUMPY`` escape hatch, and the vector/scalar stats counters.
"""

import random

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.cache import LocalityModel
from repro.gpu.rates import (
    _VEC_MIN,
    RateInput,
    SchedulingMode,
    _derive_rates_scalar,
    _derive_rates_uncached,
    _derive_rates_vector,
    configure_rates_cache,
    derive_rates,
    reset_rates_cache,
)
from repro.sim.engine import EnvironmentStats

np = pytest.importorskip("numpy")

COSTS = CostModel()


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_rates_cache()
    yield
    configure_rates_cache(4096)


def random_input(rng: random.Random, key: int) -> RateInput:
    slate = rng.random() < 0.5
    return RateInput(
        key=key,
        flops_per_block=rng.uniform(0, 5e7) if rng.random() < 0.9 else 0.0,
        bytes_per_block=rng.uniform(0, 2e6) if rng.random() < 0.9 else 0.0,
        locality=LocalityModel(
            reuse_fraction=rng.uniform(0.0, 1.0),
            order_sensitivity=rng.uniform(0.0, 1.0),
            footprint=rng.choice([0.0, rng.uniform(0, 8e6)]),
        ),
        dram_efficiency=rng.uniform(0.3, 1.0),
        min_block_time=rng.choice([0.0, rng.uniform(0, 1e-5)]),
        mode=SchedulingMode.SLATE if slate else SchedulingMode.HARDWARE,
        blocks_per_sm=rng.randint(1, 32),
        n_sms=rng.randint(1, 30),
        parallelism=rng.randint(1, 480),
        task_size=rng.randint(1, 64) if slate else 1,
        inject_frac=rng.choice([0.0, rng.uniform(0, 0.5)]),
        order_factor=rng.choice([0.25, 1.0, rng.uniform(0, 1)]),
    )


def assert_outputs_bit_equal(a, b):
    assert a.keys() == b.keys()
    for key in a:
        for field in ("block_time", "rate", "throttle", "dram_bytes_per_block", "demand"):
            va, vb = getattr(a[key], field), getattr(b[key], field)
            assert va == vb, f"{field} mismatch for {key}: {va!r} != {vb!r}"
            # Same bits, not merely numerically close (catches -0.0 drift).
            assert np.float64(va).tobytes() == np.float64(vb).tobytes()


@pytest.mark.parametrize("width", [4, 5, 8, 16])
@pytest.mark.parametrize("seed", range(8))
def test_vector_matches_scalar_bitwise(width, seed):
    rng = random.Random(1000 * width + seed)
    inputs = [random_input(rng, k) for k in range(width)]
    scalar = _derive_rates_scalar(inputs, TITAN_XP, COSTS)
    vector = _derive_rates_vector(inputs, TITAN_XP, COSTS)
    assert_outputs_bit_equal(scalar, vector)


def test_vector_matches_scalar_on_identical_inputs():
    """Equal-demand flows exercise the waterfill tie branches."""
    rng = random.Random(7)
    proto = random_input(rng, 0)
    inputs = [
        RateInput(**{**proto.__dict__, "key": k}) for k in range(6)
    ]
    assert_outputs_bit_equal(
        _derive_rates_scalar(inputs, TITAN_XP, COSTS),
        _derive_rates_vector(inputs, TITAN_XP, COSTS),
    )


def test_vector_zero_demand_lane():
    """A pure-compute kernel (zero DRAM demand) rides the masked lanes."""
    rng = random.Random(11)
    inputs = [random_input(rng, k) for k in range(4)]
    inputs[2] = RateInput(
        **{**inputs[2].__dict__, "bytes_per_block": 0.0,
           "locality": LocalityModel()}
    )
    assert_outputs_bit_equal(
        _derive_rates_scalar(inputs, TITAN_XP, COSTS),
        _derive_rates_vector(inputs, TITAN_XP, COSTS),
    )


def test_dispatch_threshold_and_counters(monkeypatch):
    # An inherited REPRO_NO_NUMPY (the no-numpy CI lane's A/B runs) would
    # force the scalar path and void the dispatch assertions.
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    rng = random.Random(3)
    stats = EnvironmentStats()
    narrow = [random_input(rng, k) for k in range(_VEC_MIN - 1)]
    _derive_rates_uncached(narrow, TITAN_XP, COSTS, stats=stats)
    assert stats.rate_scalar_evals == 1
    assert stats.rate_vector_evals == 0

    wide = [random_input(rng, k) for k in range(_VEC_MIN)]
    _derive_rates_uncached(wide, TITAN_XP, COSTS, stats=stats)
    assert stats.rate_vector_evals == 1
    assert stats.rate_vector_batch == _VEC_MIN
    assert stats.rate_scalar_evals == 1


def test_no_numpy_env_forces_scalar(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    rng = random.Random(5)
    stats = EnvironmentStats()
    wide = [random_input(rng, k) for k in range(_VEC_MIN + 2)]
    out = _derive_rates_uncached(wide, TITAN_XP, COSTS, stats=stats)
    assert stats.rate_vector_evals == 0
    assert stats.rate_scalar_evals == 1
    monkeypatch.delenv("REPRO_NO_NUMPY")
    assert_outputs_bit_equal(out, _derive_rates_vector(wide, TITAN_XP, COSTS))


def test_invalid_order_factor_raises_scalar_error():
    """Out-of-range inputs still raise the scalar path's exact error."""
    rng = random.Random(9)
    inputs = [random_input(rng, k) for k in range(_VEC_MIN)]
    inputs[1] = RateInput(**{**inputs[1].__dict__, "order_factor": 1.5})
    with pytest.raises(ValueError, match="order_factor must be in"):
        _derive_rates_uncached(inputs, TITAN_XP, COSTS)


def test_derive_rates_end_to_end_width_sweep():
    """Public API: memoized wide calls agree with scalar-forced calls."""
    rng = random.Random(21)
    for width in range(1, 9):
        inputs = [random_input(rng, k) for k in range(width)]
        reset_rates_cache()
        via_api = derive_rates(inputs, TITAN_XP, COSTS)
        assert_outputs_bit_equal(
            via_api, _derive_rates_scalar(inputs, TITAN_XP, COSTS)
        )
