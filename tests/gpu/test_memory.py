"""Water-filling bandwidth allocation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.memory import BandwidthArbiter, FlowDemand, waterfill


class TestWaterfillUnit:
    def test_single_flow_under_capacity(self):
        alloc = waterfill([FlowDemand("a", 100.0)], 500.0)
        assert alloc["a"] == pytest.approx(100.0)

    def test_single_flow_over_capacity(self):
        alloc = waterfill([FlowDemand("a", 900.0)], 500.0)
        assert alloc["a"] == pytest.approx(500.0)

    def test_two_equal_flows_split_evenly(self):
        alloc = waterfill([FlowDemand("a", 400.0), FlowDemand("b", 400.0)], 500.0)
        assert alloc["a"] == pytest.approx(250.0)
        assert alloc["b"] == pytest.approx(250.0)

    def test_small_flow_satisfied_rest_to_big(self):
        alloc = waterfill([FlowDemand("small", 50.0), FlowDemand("big", 900.0)], 500.0)
        assert alloc["small"] == pytest.approx(50.0)
        assert alloc["big"] == pytest.approx(450.0)

    def test_three_way_redistribution(self):
        flows = [FlowDemand("a", 10.0), FlowDemand("b", 100.0), FlowDemand("c", 1000.0)]
        alloc = waterfill(flows, 300.0)
        assert alloc["a"] == pytest.approx(10.0)
        # Remaining 290 split: b wants 100 < 145, satisfied; c gets the rest.
        assert alloc["b"] == pytest.approx(100.0)
        assert alloc["c"] == pytest.approx(190.0)

    def test_zero_demand_flow_gets_zero(self):
        alloc = waterfill([FlowDemand("z", 0.0), FlowDemand("a", 100.0)], 50.0)
        assert alloc["z"] == 0.0
        assert alloc["a"] == pytest.approx(50.0)

    def test_empty_flow_list(self):
        assert waterfill([], 100.0) == {}

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            waterfill([FlowDemand("a", 1.0), FlowDemand("a", 2.0)], 10.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            FlowDemand("a", -1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            waterfill([], -1.0)


demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    min_size=1,
    max_size=20,
)


@given(demands=demand_lists, capacity=st.floats(min_value=1.0, max_value=1e12))
def test_waterfill_never_exceeds_demand_or_capacity(demands, capacity):
    flows = [FlowDemand(i, d) for i, d in enumerate(demands)]
    alloc = waterfill(flows, capacity)
    tol = 1e-6 * max(capacity, 1.0)
    for f in flows:
        assert alloc[f.key] <= f.demand + tol
    assert sum(alloc.values()) <= capacity + tol


@given(demands=demand_lists, capacity=st.floats(min_value=1.0, max_value=1e12))
def test_waterfill_is_work_conserving(demands, capacity):
    """Allocations total min(capacity, total demand)."""
    flows = [FlowDemand(i, d) for i, d in enumerate(demands)]
    alloc = waterfill(flows, capacity)
    expected = min(capacity, sum(demands))
    assert sum(alloc.values()) == pytest.approx(expected, rel=1e-6, abs=1e-3)


@given(demands=demand_lists, capacity=st.floats(min_value=1.0, max_value=1e12))
def test_waterfill_is_max_min_fair(demands, capacity):
    """Every throttled flow gets >= every other flow's allocation - tol."""
    flows = [FlowDemand(i, d) for i, d in enumerate(demands)]
    alloc = waterfill(flows, capacity)
    tol = 1e-6 * max(capacity, 1.0) + 1e-9
    throttled = [f for f in flows if alloc[f.key] < f.demand - tol]
    for t in throttled:
        for other in flows:
            assert alloc[t.key] >= alloc[other.key] - tol


class TestBandwidthArbiter:
    def test_throttle_fraction(self):
        arb = BandwidthArbiter(100.0)
        arb.set_demand("a", 80.0)
        arb.set_demand("b", 80.0)
        assert arb.allocation("a") == pytest.approx(50.0)
        assert arb.throttle_fraction("a") == pytest.approx(1 - 50 / 80)

    def test_removal_redistributes(self):
        arb = BandwidthArbiter(100.0)
        arb.set_demand("a", 80.0)
        arb.set_demand("b", 80.0)
        arb.remove("b")
        assert arb.allocation("a") == pytest.approx(80.0)
        assert arb.throttle_fraction("a") == 0.0

    def test_unknown_key_is_zero(self):
        arb = BandwidthArbiter(100.0)
        assert arb.allocation("nope") == 0.0
        assert arb.throttle_fraction("nope") == 0.0

    def test_total_allocated(self):
        arb = BandwidthArbiter(100.0)
        arb.set_demand("a", 30.0)
        arb.set_demand("b", 200.0)
        assert arb.total_allocated == pytest.approx(100.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BandwidthArbiter(0.0)
