"""Occupancy calculator tests (unit + property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import TITAN_XP, DeviceConfig
from repro.gpu.occupancy import BlockResources, occupancy


class TestBasicLimits:
    def test_thread_limited(self):
        # 1024-thread blocks: 2048/1024 = 2 blocks per SM.
        res = occupancy(TITAN_XP, BlockResources(threads_per_block=1024, registers_per_thread=0))
        assert res.blocks_per_sm == 2
        assert res.limiter in ("threads", "warps")

    def test_block_limited(self):
        # Tiny blocks: the 32-block cap binds before threads do.
        res = occupancy(TITAN_XP, BlockResources(threads_per_block=32, registers_per_thread=0))
        assert res.blocks_per_sm == 32
        assert res.limiter == "blocks"

    def test_register_limited(self):
        # 256 threads * 64 regs = 16384 regs/block -> 4 blocks (65536 regs).
        res = occupancy(
            TITAN_XP, BlockResources(threads_per_block=256, registers_per_thread=64)
        )
        assert res.blocks_per_sm == 4
        assert res.limiter == "registers"

    def test_shared_mem_limited(self):
        res = occupancy(
            TITAN_XP,
            BlockResources(
                threads_per_block=64,
                registers_per_thread=0,
                shared_mem_per_block=48 * 1024,
            ),
        )
        assert res.blocks_per_sm == 2
        assert res.limiter == "shared_mem"

    def test_typical_128_thread_kernel(self):
        # 128 threads, 32 regs: threads limit 2048/128 = 16.
        res = occupancy(
            TITAN_XP, BlockResources(threads_per_block=128, registers_per_thread=32)
        )
        assert res.blocks_per_sm == 16

    def test_warps_per_block_rounds_up(self):
        res = occupancy(TITAN_XP, BlockResources(threads_per_block=33, registers_per_thread=0))
        assert res.warps_per_block == 2

    def test_threads_per_sm_property(self):
        res = occupancy(TITAN_XP, BlockResources(threads_per_block=256, registers_per_thread=0))
        assert res.threads_per_sm == res.blocks_per_sm * 256

    def test_occupancy_fraction_bounded(self):
        res = occupancy(TITAN_XP, BlockResources(threads_per_block=256, registers_per_thread=32))
        assert 0 < res.occupancy_fraction(TITAN_XP) <= 1.0


class TestErrors:
    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError, match="exceeds device limit"):
            occupancy(TITAN_XP, BlockResources(threads_per_block=2048))

    def test_register_hog_rejected(self):
        with pytest.raises(ValueError, match="registers"):
            occupancy(
                TITAN_XP, BlockResources(threads_per_block=1024, registers_per_thread=255)
            )

    def test_shared_mem_hog_rejected(self):
        with pytest.raises(ValueError, match="shared memory"):
            occupancy(
                TITAN_XP,
                BlockResources(threads_per_block=32, shared_mem_per_block=128 * 1024),
            )

    def test_invalid_block_resources(self):
        with pytest.raises(ValueError):
            BlockResources(threads_per_block=0)
        with pytest.raises(ValueError):
            BlockResources(threads_per_block=32, registers_per_thread=-1)
        with pytest.raises(ValueError):
            BlockResources(threads_per_block=32, shared_mem_per_block=-1)


@given(
    threads=st.integers(min_value=1, max_value=1024),
    regs=st.integers(min_value=0, max_value=64),
    smem=st.integers(min_value=0, max_value=32 * 1024),
)
def test_occupancy_respects_every_hardware_limit(threads, regs, smem):
    """The result never violates any SM capacity."""
    block = BlockResources(threads, regs, smem)
    try:
        res = occupancy(TITAN_XP, block)
    except ValueError:
        return  # unlaunchable configurations are allowed to be rejected
    n = res.blocks_per_sm
    assert 1 <= n <= TITAN_XP.max_blocks_per_sm
    assert n * res.warps_per_block <= TITAN_XP.max_warps_per_sm
    assert n * res.warps_per_block * 32 <= TITAN_XP.max_threads_per_sm
    if smem:
        assert n * smem <= TITAN_XP.shared_mem_per_sm


@given(
    threads=st.integers(min_value=1, max_value=512),
    regs=st.integers(min_value=1, max_value=48),
)
def test_occupancy_is_maximal(threads, regs):
    """One more block would violate at least one limit."""
    block = BlockResources(threads, regs)
    res = occupancy(TITAN_XP, block)
    n = res.blocks_per_sm + 1
    warps = res.warps_per_block
    regs_per_warp = ((regs * 32 + 255) // 256) * 256
    violations = (
        n > TITAN_XP.max_blocks_per_sm
        or n * warps > TITAN_XP.max_warps_per_sm
        or n * warps * 32 > TITAN_XP.max_threads_per_sm
        or n * warps * regs_per_warp > TITAN_XP.registers_per_sm
    )
    assert violations


@given(threads=st.integers(min_value=1, max_value=1024))
def test_more_registers_never_increases_occupancy(threads):
    lo = occupancy(TITAN_XP, BlockResources(threads, registers_per_thread=16))
    hi = occupancy(TITAN_XP, BlockResources(threads, registers_per_thread=32))
    assert hi.blocks_per_sm <= lo.blocks_per_sm


class TestAnalyze:
    def test_report_fields(self):
        from repro.gpu.occupancy import analyze

        report = analyze(TITAN_XP, BlockResources(256, 64, 16 * 1024))
        assert report.result.blocks_per_sm == 4
        assert report.result.limiter == "registers"
        assert report.limits["registers"] == 4
        assert report.limits["shared_mem"] == 6
        assert "registers" in report.headroom_hint
        assert 0 < report.occupancy_fraction <= 1

    def test_limits_are_consistent_with_result(self):
        from repro.gpu.occupancy import analyze

        report = analyze(TITAN_XP, BlockResources(128, 32))
        assert report.result.blocks_per_sm == min(report.limits.values())

    def test_hints_cover_limiters(self):
        from repro.gpu.occupancy import analyze

        smem_bound = analyze(TITAN_XP, BlockResources(64, 8, 48 * 1024))
        assert "shared_mem" == smem_bound.result.limiter
        assert "shared_mem_per_block" in smem_bound.headroom_hint
        thread_bound = analyze(TITAN_XP, BlockResources(1024, 16))
        assert "smaller thread blocks" in thread_bound.headroom_hint
        block_bound = analyze(TITAN_XP, BlockResources(32, 8))
        assert "block cap" in block_bound.headroom_hint


class TestOccupancyCurve:
    def test_curve_shape(self):
        from repro.gpu.occupancy import occupancy_curve

        curve = occupancy_curve(TITAN_XP, 512, registers_per_thread=40)
        assert set(curve) == set(range(32, 513, 32))
        assert all(0 <= v <= 1 for v in curve.values())

    def test_low_register_kernels_reach_full_occupancy(self):
        from repro.gpu.occupancy import occupancy_curve

        curve = occupancy_curve(TITAN_XP, 256, registers_per_thread=16)
        assert max(curve.values()) == pytest.approx(1.0)

    def test_unlaunchable_sizes_report_zero(self):
        from repro.gpu.occupancy import occupancy_curve

        curve = occupancy_curve(TITAN_XP, 1024, registers_per_thread=128)
        assert curve[1024] == 0.0  # 128 regs x 1024 threads > register file

    def test_validation(self):
        from repro.gpu.occupancy import occupancy_curve

        with pytest.raises(ValueError):
            occupancy_curve(TITAN_XP, 16)
