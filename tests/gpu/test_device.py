"""Tests for the epoch-fluid GPU executor."""

import math

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.cache import LocalityModel
from repro.gpu.device import ExecutionMode, KernelWork, SimulatedGPU
from repro.gpu.occupancy import BlockResources
from repro.sim import Environment


def make_gpu(**cost_overrides):
    env = Environment()
    costs = CostModel(**cost_overrides) if cost_overrides else CostModel()
    return env, SimulatedGPU(env, TITAN_XP, costs)


def compute_work(name="compute", num_blocks=3000, flops=2e6, **kw):
    """A purely compute-bound kernel."""
    defaults = dict(
        block=BlockResources(threads_per_block=128, registers_per_thread=32),
        flops_per_block=flops,
        bytes_per_block=0.0,
        time_cv=0.0,
    )
    defaults.update(kw)
    return KernelWork(name=name, num_blocks=num_blocks, **defaults)


def memory_work(name="memory", num_blocks=3000, bytes_pb=2e6, **kw):
    """A purely memory-bound streaming kernel (no reuse)."""
    defaults = dict(
        block=BlockResources(threads_per_block=128, registers_per_thread=32),
        flops_per_block=0.0,
        bytes_per_block=bytes_pb,
        time_cv=0.0,
    )
    defaults.update(kw)
    return KernelWork(name=name, num_blocks=num_blocks, **defaults)


class TestSoloExecution:
    def test_all_blocks_executed(self):
        env, gpu = make_gpu()
        work = compute_work(num_blocks=1234)
        handle = gpu.launch(work)
        counters = env.run(until=handle.done)
        assert counters.blocks_executed == pytest.approx(1234, rel=1e-6)
        assert counters.flops == pytest.approx(1234 * work.flops_per_block, rel=1e-6)

    def test_compute_bound_time_matches_roofline(self):
        env, gpu = make_gpu(block_launch_overhead=0.0)
        work = compute_work(num_blocks=4800, flops=4e6, time_cv=0.0)
        handle = gpu.launch(work)
        counters = env.run(until=handle.done)
        # 128-thread blocks, 32 regs -> 16 blocks/SM -> 480 resident.
        block_time = 4e6 / (TITAN_XP.sm_flops / 16)
        # 4800 blocks over 480 resident slots: exactly 10 full waves.
        expected = 4800 * block_time / 480
        assert counters.elapsed == pytest.approx(expected, rel=0.01)

    def test_memory_bound_solo_saturates_dram(self):
        env, gpu = make_gpu(block_launch_overhead=0.0)
        # Enough issue capability on 30 SMs to exceed DRAM peak.
        work = memory_work(num_blocks=20000, bytes_pb=4e6)
        handle = gpu.launch(work)
        counters = env.run(until=handle.done)
        # Achieved bandwidth approaches the DRAM peak (tail excluded).
        assert counters.l2_throughput > 0.9 * TITAN_XP.dram_bandwidth
        assert counters.l2_throughput <= 1.01 * TITAN_XP.dram_bandwidth
        assert counters.mem_throttle_fraction > 0.3

    def test_bandwidth_scales_with_sm_count_until_saturation(self):
        """Fig. 1 shape: BW rises ~linearly then flattens at ~9 SMs."""
        results = {}
        for n_sms in (1, 3, 6, 9, 12, 20, 30):
            env, gpu = make_gpu(block_launch_overhead=0.0)
            work = memory_work(num_blocks=20000, bytes_pb=4e6)
            handle = gpu.launch(work, sm_ids=range(n_sms))
            counters = env.run(until=handle.done)
            results[n_sms] = counters.l2_throughput
        # Linear region: 3 SMs ~ 3x of 1 SM.
        assert results[3] == pytest.approx(3 * results[1], rel=0.05)
        # Saturation: 9 SMs within 5% of 30 SMs.
        assert results[9] > 0.95 * results[30]
        # And well above 6 SMs.
        assert results[9] > 1.2 * results[6]

    def test_latency_floor_binds(self):
        env, gpu = make_gpu(block_launch_overhead=0.0)
        work = compute_work(num_blocks=480, flops=1.0, min_block_time=1e-3)
        handle = gpu.launch(work)
        counters = env.run(until=handle.done)
        # 480 blocks on 480 resident slots: one wave of 1 ms.
        assert counters.elapsed == pytest.approx(1e-3, rel=0.05)

    def test_small_grid_limits_parallelism(self):
        env, gpu = make_gpu(block_launch_overhead=0.0)
        few = compute_work(num_blocks=10, flops=4e6)
        handle = gpu.launch(few)
        counters = env.run(until=handle.done)
        block_time = 4e6 / (TITAN_XP.sm_flops / 16)
        # 10 blocks run fully parallel: one block_time.
        assert counters.elapsed == pytest.approx(block_time, rel=0.05)

    def test_launch_validation(self):
        env, gpu = make_gpu()
        with pytest.raises(ValueError):
            gpu.launch(compute_work(), sm_ids=[])
        with pytest.raises(ValueError):
            gpu.launch(compute_work(), sm_ids=[99])
        with pytest.raises(ValueError):
            gpu.launch(compute_work(), task_size=0)
        with pytest.raises(ValueError):
            gpu.sm_range(5, 99)

    def test_counters_time_bounds(self):
        env, gpu = make_gpu()
        handle = gpu.launch(compute_work(num_blocks=100))
        counters = env.run(until=handle.done)
        assert counters.start_time == 0.0
        assert counters.end_time == env.now
        assert counters.busy_time <= counters.elapsed + 1e-9


class TestHardwareVsSlateOverheads:
    def test_block_launch_overhead_slows_hardware_short_blocks(self):
        """Short-block kernels pay per-block dispatch under hardware mode."""
        work = compute_work(num_blocks=48000, flops=1e4)  # ~0.4 us blocks

        env, gpu = make_gpu(block_launch_overhead=0.0)
        t0 = env.run(until=gpu.launch(work, mode=ExecutionMode.HARDWARE).done).elapsed

        env, gpu = make_gpu(block_launch_overhead=0.5e-6)
        t1 = env.run(until=gpu.launch(work, mode=ExecutionMode.HARDWARE).done).elapsed
        assert t1 > t0 * 1.5

    def test_slate_task_grouping_amortizes_pull_cost(self):
        """Fig. 5 mechanism: larger tasks amortize the atomic pull."""
        work = compute_work(num_blocks=48000, flops=2e4, time_cv=0.0)
        times = {}
        for task_size in (1, 10):
            env, gpu = make_gpu()
            handle = gpu.launch(work, mode=ExecutionMode.SLATE, task_size=task_size)
            times[task_size] = env.run(until=handle.done).elapsed
        assert times[1] > times[10] * 1.5

    def test_large_tasks_increase_straggler_tail(self):
        """The imbalance side of Fig. 5: high-variance kernels prefer s=1."""
        work = compute_work(num_blocks=4800, flops=2e7, time_cv=0.15)
        times = {}
        for task_size in (1, 10):
            env, gpu = make_gpu(atomic_latency=0.0)
            handle = gpu.launch(work, mode=ExecutionMode.SLATE, task_size=task_size)
            times[task_size] = env.run(until=handle.done).elapsed
        assert times[10] > times[1]

    def test_slate_injected_instructions_counted(self):
        work = compute_work(num_blocks=100, instr_per_block=1000)
        env, gpu = make_gpu()
        handle = gpu.launch(work, mode=ExecutionMode.SLATE, inject_frac=0.03)
        counters = env.run(until=handle.done)
        assert counters.instructions == pytest.approx(100 * 1000 * 1.03, rel=1e-6)

    def test_order_sensitive_kernel_faster_under_slate(self):
        """Table III mechanism: in-order execution improves locality."""
        loc = LocalityModel(reuse_fraction=0.35, order_sensitivity=0.95, footprint=8e6)
        work = memory_work(num_blocks=20000, bytes_pb=4e6, locality=loc)
        env, gpu = make_gpu()
        hw = env.run(until=gpu.launch(work, mode=ExecutionMode.HARDWARE).done)
        env, gpu = make_gpu()
        slate = env.run(
            until=gpu.launch(work, mode=ExecutionMode.SLATE, task_size=10).done
        )
        assert slate.elapsed < hw.elapsed * 0.9
        assert slate.bytes_dram < 0.8 * hw.bytes_dram
        assert slate.mem_throttle_fraction < hw.mem_throttle_fraction


class TestConcurrentKernels:
    def test_compute_plus_memory_corun_barely_interfere(self):
        """Complementary kernels keep ~solo speed on their partitions."""
        comp = compute_work(num_blocks=6000, flops=4e6)
        mem = memory_work(num_blocks=6000, bytes_pb=4e6)

        # Solo runs on their partitions.
        env, gpu = make_gpu()
        t_comp_solo = env.run(
            until=gpu.launch(comp, sm_ids=range(15, 30)).done
        ).elapsed
        env, gpu = make_gpu()
        t_mem_solo = env.run(until=gpu.launch(mem, sm_ids=range(0, 15)).done).elapsed

        # Co-run on the same disjoint partitions.
        env, gpu = make_gpu()
        h_mem = gpu.launch(mem, sm_ids=range(0, 15))
        h_comp = gpu.launch(comp, sm_ids=range(15, 30))
        env.run(until=h_mem.done & h_comp.done)
        t_mem_corun = h_mem.counters.elapsed
        t_comp_corun = h_comp.counters.elapsed

        assert t_comp_corun == pytest.approx(t_comp_solo, rel=0.02)
        # 15 SMs of streaming already saturate DRAM solo; corun is unchanged.
        assert t_mem_corun == pytest.approx(t_mem_solo, rel=0.05)

    def test_two_memory_kernels_contend(self):
        """Two DRAM-saturating kernels slow each other ~2x."""
        mem_a = memory_work(name="a", num_blocks=8000, bytes_pb=4e6)
        mem_b = memory_work(name="b", num_blocks=8000, bytes_pb=4e6)

        env, gpu = make_gpu()
        t_solo = env.run(until=gpu.launch(mem_a, sm_ids=range(0, 15)).done).elapsed

        env, gpu = make_gpu()
        h_a = gpu.launch(mem_a, sm_ids=range(0, 15))
        h_b = gpu.launch(mem_b, sm_ids=range(15, 30))
        env.run(until=h_a.done & h_b.done)
        assert h_a.counters.elapsed > 1.7 * t_solo
        assert h_a.counters.mem_throttle_fraction > 0.3

    def test_completion_frees_bandwidth_for_survivor(self):
        """When one kernel finishes, the survivor speeds up (rate trace)."""
        short = memory_work(name="short", num_blocks=2000, bytes_pb=4e6)
        long = memory_work(name="long", num_blocks=20000, bytes_pb=4e6)
        env, gpu = make_gpu()
        h_short = gpu.launch(short, sm_ids=range(0, 15))
        h_long = gpu.launch(long, sm_ids=range(15, 30))
        env.run(until=h_long.done)
        # Find long's rate while short was running and after.
        rates_during = [
            r["long"]
            for t, r in gpu.rate_trace
            if "long" in r and "short" in r and r["short"] > 0
        ]
        rates_after = [
            r["long"]
            for t, r in gpu.rate_trace
            if "long" in r and "short" not in r
        ]
        assert rates_during and rates_after
        assert max(rates_after) > 1.5 * min(rates_during)


class TestResizing:
    def test_resize_preserves_total_blocks(self):
        env, gpu = make_gpu()
        work = compute_work(num_blocks=9000, flops=4e6)
        handle = gpu.launch(work, sm_ids=range(0, 10), mode=ExecutionMode.SLATE, task_size=10)

        def resizer(env):
            yield env.timeout(handle.work.num_blocks * 1e-7)
            yield gpu.resize(handle, range(0, 30))

        env.process(resizer(env))
        counters = env.run(until=handle.done)
        assert counters.blocks_executed == pytest.approx(9000, rel=1e-6)
        assert counters.resizes == 1

    def test_growing_speeds_completion(self):
        work = compute_work(num_blocks=20000, flops=4e6)

        env, gpu = make_gpu()
        h = gpu.launch(work, sm_ids=range(0, 10), mode=ExecutionMode.SLATE, task_size=10)
        t_small = env.run(until=h.done).elapsed

        env, gpu = make_gpu()
        h = gpu.launch(work, sm_ids=range(0, 10), mode=ExecutionMode.SLATE, task_size=10)

        def grow(env):
            yield env.timeout(t_small * 0.25)
            yield gpu.resize(h, range(0, 30))

        env.process(grow(env))
        t_grown = env.run(until=h.done).elapsed
        assert t_grown < 0.65 * t_small

    def test_shrink_slows_completion(self):
        work = compute_work(num_blocks=20000, flops=4e6)

        env, gpu = make_gpu()
        h = gpu.launch(work, mode=ExecutionMode.SLATE, task_size=10)
        t_full = env.run(until=h.done).elapsed

        env, gpu = make_gpu()
        h = gpu.launch(work, mode=ExecutionMode.SLATE, task_size=10)

        def shrink(env):
            yield env.timeout(t_full * 0.25)
            yield gpu.resize(h, range(0, 10))

        env.process(shrink(env))
        t_shrunk = env.run(until=h.done).elapsed
        assert t_shrunk > 1.5 * t_full

    def test_resize_hardware_kernel_rejected(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(), mode=ExecutionMode.HARDWARE)
        with pytest.raises(ValueError):
            gpu.resize(h, range(0, 10))

    def test_resize_after_done_is_noop(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(num_blocks=10), mode=ExecutionMode.SLATE)
        env.run(until=h.done)
        ev = gpu.resize(h, range(0, 5))
        assert ev.triggered


class TestPauseResume:
    def test_pause_freezes_progress(self):
        env, gpu = make_gpu()
        work = compute_work(num_blocks=20000, flops=4e6)
        h = gpu.launch(work)

        def controller(env):
            yield env.timeout(1e-4)
            gpu.pause(h)
            done_at_pause = h.blocks_done
            yield env.timeout(10.0)
            assert h.blocks_done == done_at_pause
            gpu.resume(h)

        env.process(controller(env))
        counters = env.run(until=h.done)
        assert counters.blocks_executed == pytest.approx(20000, rel=1e-6)
        assert counters.elapsed > 10.0

    def test_tail_event_fires_before_done(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(num_blocks=1000))
        env.run(until=h.tail_started)
        t_tail = env.now
        env.run(until=h.done)
        assert env.now > t_tail


class TestRateTraceAndEdges:
    def test_rate_trace_records_epochs(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(name="solo", num_blocks=2000))
        env.run(until=h.done)
        assert gpu.rate_trace
        times = [t for t, _ in gpu.rate_trace]
        assert times == sorted(times)
        assert any("solo" in sample for _, sample in gpu.rate_trace)
        # The final epoch (after completion) has no active kernels.
        assert gpu.rate_trace[-1][1] == {}

    def test_pause_during_tail_is_noop(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(num_blocks=1000))
        env.run(until=h.tail_started)
        gpu.pause(h)  # TAIL state: must not freeze the drain
        counters = env.run(until=h.done)
        assert counters.blocks_executed == pytest.approx(1000)

    def test_resume_running_kernel_is_noop(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(num_blocks=2000))
        env.run(until=1e-5)
        before = h._rates.rate
        gpu.resume(h)  # already running
        assert h._rates.rate == before
        env.run(until=h.done)

    def test_overlapping_sm_sets_allowed_in_hardware_mode(self):
        """The device does not police SM exclusivity (Hyper-Q/leftover
        overlap legitimately share SMs); schedulers enforce disjointness."""
        env, gpu = make_gpu()
        a = gpu.launch(compute_work(name="a", num_blocks=2000))
        b = gpu.launch(compute_work(name="b", num_blocks=2000))
        env.run(until=a.done & b.done)
        assert a.counters.blocks_executed == pytest.approx(2000)
        assert b.counters.blocks_executed == pytest.approx(2000)

    def test_zero_byte_kernel_never_throttles(self):
        env, gpu = make_gpu()
        h = gpu.launch(compute_work(num_blocks=3000, flops=1e6))
        counters = env.run(until=h.done)
        assert counters.mem_throttle_fraction == 0.0
        assert counters.bytes_dram == 0.0

    def test_sm_range_helper(self):
        env, gpu = make_gpu()
        assert gpu.sm_range(0, 11) == tuple(range(12))
        assert gpu.sm_range(29, 29) == (29,)
        with pytest.raises(ValueError):
            gpu.sm_range(10, 5)
