"""Cross-validation: per-block DES executor vs the epoch-fluid executor."""

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.detailed import run_detailed
from repro.gpu.device import ExecutionMode, KernelWork, SimulatedGPU
from repro.gpu.occupancy import BlockResources
from repro.sim import Environment


def fluid_elapsed(work, mode=ExecutionMode.HARDWARE, task_size=1, sm_count=30):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    handle = gpu.launch(work, sm_ids=range(sm_count), mode=mode, task_size=task_size)
    return env.run(until=handle.done).elapsed


def make_work(num_blocks=2000, flops=2e6, bytes_pb=0.0, cv=0.0, threads=128):
    return KernelWork(
        name="xval",
        num_blocks=num_blocks,
        block=BlockResources(threads_per_block=threads, registers_per_thread=32),
        flops_per_block=flops,
        bytes_per_block=bytes_pb,
        time_cv=cv,
    )


class TestCrossValidation:
    @pytest.mark.parametrize("num_blocks", [480, 2000, 7000])
    def test_hardware_compute_bound_agrees(self, num_blocks):
        work = make_work(num_blocks=num_blocks, flops=2e6)
        detailed = run_detailed(work, mode=ExecutionMode.HARDWARE).elapsed
        fluid = fluid_elapsed(work, mode=ExecutionMode.HARDWARE)
        assert fluid == pytest.approx(detailed, rel=0.08)

    @pytest.mark.parametrize("task_size", [1, 5, 10, 25])
    def test_slate_task_sizes_agree(self, task_size):
        work = make_work(num_blocks=4800, flops=3e5)
        detailed = run_detailed(
            work, mode=ExecutionMode.SLATE, task_size=task_size
        ).elapsed
        fluid = fluid_elapsed(work, mode=ExecutionMode.SLATE, task_size=task_size)
        assert fluid == pytest.approx(detailed, rel=0.15)

    def test_memory_bound_agrees(self):
        work = make_work(num_blocks=3000, flops=0.0, bytes_pb=3e6)
        detailed = run_detailed(work, mode=ExecutionMode.HARDWARE).elapsed
        fluid = fluid_elapsed(work)
        assert fluid == pytest.approx(detailed, rel=0.1)

    @pytest.mark.parametrize("sm_count", [5, 15, 30])
    def test_partial_sm_sets_agree(self, sm_count):
        work = make_work(num_blocks=3000, flops=2e6)
        detailed = run_detailed(work, sm_count=sm_count).elapsed
        fluid = fluid_elapsed(work, sm_count=sm_count)
        assert fluid == pytest.approx(detailed, rel=0.08)

    def test_variance_increases_detailed_time(self):
        smooth = make_work(num_blocks=2000, flops=2e6, cv=0.0)
        noisy = make_work(num_blocks=2000, flops=2e6, cv=0.3)
        t_smooth = run_detailed(smooth, seed=7).elapsed
        t_noisy = run_detailed(noisy, seed=7).elapsed
        assert t_noisy > t_smooth

    def test_queue_pull_count(self):
        work = make_work(num_blocks=1000, flops=3e5)
        res = run_detailed(work, mode=ExecutionMode.SLATE, task_size=10)
        assert res.queue_pulls == 100
        assert res.blocks_executed == 1000

    def test_detailed_deterministic_per_seed(self):
        work = make_work(num_blocks=500, flops=2e6, cv=0.2)
        a = run_detailed(work, seed=3).elapsed
        b = run_detailed(work, seed=3).elapsed
        c = run_detailed(work, seed=4).elapsed
        assert a == b
        assert a != c

    def test_validation_errors(self):
        work = make_work()
        with pytest.raises(ValueError):
            run_detailed(work, sm_count=0)
        with pytest.raises(ValueError):
            run_detailed(work, task_size=0)


class TestFig5ShapeDetailed:
    def test_short_block_kernel_prefers_grouping(self):
        """GS-like kernel: detailed executor shows s=10 halving s=1 time."""
        work = make_work(num_blocks=20000, flops=2e4, threads=256)
        t1 = run_detailed(work, mode=ExecutionMode.SLATE, task_size=1).elapsed
        t10 = run_detailed(work, mode=ExecutionMode.SLATE, task_size=10).elapsed
        assert t1 > 1.5 * t10

    def test_high_variance_kernel_prefers_small_tasks(self):
        """BS-like kernel: detailed executor shows imbalance at s=10."""
        work = make_work(num_blocks=4800, flops=2e7, cv=0.12)
        t1 = run_detailed(work, mode=ExecutionMode.SLATE, task_size=1, seed=11).elapsed
        t10 = run_detailed(work, mode=ExecutionMode.SLATE, task_size=10, seed=11).elapsed
        assert t10 > t1


class TestCorunCrossValidation:
    """Fluid vs per-block executor for two co-resident kernels."""

    def fluid_corun(self, work_a, work_b, sms_a, task_size=10):
        from repro.config import TITAN_XP, CostModel
        from repro.gpu.device import SimulatedGPU
        from repro.sim import Environment

        env = Environment()
        gpu = SimulatedGPU(env, TITAN_XP, CostModel())
        ha = gpu.launch(
            work_a, sm_ids=range(sms_a), mode=ExecutionMode.SLATE, task_size=task_size
        )
        hb = gpu.launch(
            work_b,
            sm_ids=range(sms_a, 30),
            mode=ExecutionMode.SLATE,
            task_size=task_size,
        )
        env.run(until=ha.done & hb.done)
        return ha.counters.elapsed, hb.counters.elapsed

    def test_compute_pair_agrees(self):
        from repro.gpu.detailed import run_detailed_corun

        a = make_work(num_blocks=2400, flops=2e6)
        b = make_work(num_blocks=2400, flops=2e6)
        da, db = run_detailed_corun(a, b, 15, 15)
        fa, fb = self.fluid_corun(a, b, 15)
        assert fa == pytest.approx(da.elapsed, rel=0.12)
        assert fb == pytest.approx(db.elapsed, rel=0.12)

    def test_memory_contending_pair_agrees(self):
        from repro.gpu.detailed import run_detailed_corun

        a = make_work(num_blocks=2400, flops=0.0, bytes_pb=3e6)
        b = make_work(num_blocks=2400, flops=0.0, bytes_pb=3e6)
        da, db = run_detailed_corun(a, b, 15, 15)
        fa, fb = self.fluid_corun(a, b, 15)
        assert fa == pytest.approx(da.elapsed, rel=0.15)
        assert fb == pytest.approx(db.elapsed, rel=0.15)

    def test_asymmetric_partition_agrees(self):
        from repro.gpu.detailed import run_detailed_corun

        a = make_work(num_blocks=1600, flops=0.0, bytes_pb=2e6)
        b = make_work(num_blocks=3200, flops=1e6)
        da, db = run_detailed_corun(a, b, 10, 20)
        fa, fb = self.fluid_corun(a, b, 10)
        assert fa == pytest.approx(da.elapsed, rel=0.15)
        assert fb == pytest.approx(db.elapsed, rel=0.15)

    def test_invalid_partition_rejected(self):
        from repro.gpu.detailed import run_detailed_corun

        a = make_work(num_blocks=100)
        with pytest.raises(ValueError):
            run_detailed_corun(a, a, 20, 20)
