"""The rate-derivation memo: cached results must be indistinguishable.

``derive_rates`` is pure, so memoized and uncached calls must agree
exactly — on single kernels, on fig7-style co-run pairings, and across
cache-key canonicalization (per-kernel keys are positionised, so renaming
a kernel still hits).  The knobs (``REPRO_NO_CACHE``, maxsize 0) must
force full derivations, and long runs must actually *hit* (>50% on the
fig7 grid).
"""

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.cache import LocalityModel
from repro.gpu.occupancy import (
    BlockResources,
    occupancy,
    occupancy_cache_info,
    reset_occupancy_cache,
)
from repro.gpu.rates import (
    RateInput,
    SchedulingMode,
    configure_rates_cache,
    derive_rates,
    rates_cache_info,
    reset_rates_cache,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_rates_cache()
    yield
    configure_rates_cache(4096)


def make_input(key="k", flops=1e6, bytes_pb=0.0, n_sms=30, **kw):
    defaults = dict(
        locality=LocalityModel(),
        dram_efficiency=1.0,
        min_block_time=0.0,
        inject_frac=0.0,
        order_factor=1.0,
        mode=SchedulingMode.HARDWARE,
        blocks_per_sm=16,
        task_size=1,
    )
    defaults.update(kw)
    defaults.setdefault("parallelism", defaults["blocks_per_sm"] * n_sms)
    return RateInput(
        key=key, flops_per_block=flops, bytes_per_block=bytes_pb, n_sms=n_sms, **defaults
    )


def corun_pairs():
    """Fig-7-style co-run grid: compute-heavy × memory-heavy splits."""
    pairs = []
    for split in (10, 15, 20):
        heavy = make_input(
            "heavy", flops=4e6, bytes_pb=3e6, n_sms=split,
            locality=LocalityModel(reuse_fraction=0.3, footprint=1e6),
            parallelism=16 * split,
        )
        light = make_input(
            "light", flops=2e6, bytes_pb=0.2e6, n_sms=30 - split,
            parallelism=16 * (30 - split),
        )
        pairs.append([heavy, light])
    return pairs


class TestMemoEquivalence:
    def test_memoized_equals_uncached_on_pairings(self, monkeypatch):
        costs = CostModel()
        uncached = []
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        for pair in corun_pairs():
            uncached.append(derive_rates(pair, TITAN_XP, costs))
        monkeypatch.delenv("REPRO_NO_CACHE")
        # Two passes: the first populates, the second must hit.
        for _ in range(2):
            for pair, expect in zip(corun_pairs(), uncached):
                assert derive_rates(pair, TITAN_XP, costs) == expect
        info = rates_cache_info()
        assert info["misses"] == 3
        assert info["hits"] == 3

    def test_keys_are_positionised(self):
        """Renamed kernels with identical physics share one memo entry."""
        costs = CostModel()
        a = derive_rates([make_input("alpha")], TITAN_XP, costs)
        b = derive_rates([make_input("beta")], TITAN_XP, costs)
        assert a["alpha"] == b["beta"]
        info = rates_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)

    def test_distinct_cost_models_do_not_collide(self):
        """Equal-valued configs may miss; different-valued must differ."""
        inp = [make_input(task_size=4, mode=SchedulingMode.SLATE)]
        out1 = derive_rates(inp, TITAN_XP, CostModel())
        out2 = derive_rates(inp, TITAN_XP, CostModel(atomic_latency=5e-6))
        assert out1["k"].block_time != out2["k"].block_time


class TestMemoKnobs:
    def test_env_var_bypasses(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        costs = CostModel()
        for _ in range(3):
            derive_rates([make_input()], TITAN_XP, costs)
        info = rates_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0 and info["currsize"] == 0

    def test_maxsize_zero_disables(self):
        configure_rates_cache(0)
        costs = CostModel()
        for _ in range(3):
            derive_rates([make_input()], TITAN_XP, costs)
        info = rates_cache_info()
        assert info["hits"] == 0 and info["currsize"] == 0

    def test_lru_evicts_oldest_at_maxsize(self):
        configure_rates_cache(2)
        costs = CostModel()
        a, b, c = make_input(flops=1e6), make_input(flops=2e6), make_input(flops=3e6)
        derive_rates([a], TITAN_XP, costs)  # miss
        derive_rates([b], TITAN_XP, costs)  # miss
        derive_rates([a], TITAN_XP, costs)  # hit; a now most-recent
        derive_rates([c], TITAN_XP, costs)  # miss; evicts b
        derive_rates([b], TITAN_XP, costs)  # miss again
        info = rates_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 4
        assert info["currsize"] == 2


class TestOccupancyCache:
    def test_hit_counters_advance(self):
        reset_occupancy_cache()
        block = BlockResources(threads_per_block=256, registers_per_thread=32)
        occupancy(TITAN_XP, block)
        occupancy(TITAN_XP, block)
        info = occupancy_cache_info()
        assert info["misses"] >= 1
        assert info["hits"] >= 1

    def test_unlaunchable_block_still_raises_every_time(self):
        reset_occupancy_cache()
        block = BlockResources(threads_per_block=2048, registers_per_thread=32)
        for _ in range(2):
            with pytest.raises(ValueError):
                occupancy(TITAN_XP, block)


class TestBatteryHitRate:
    def test_fig7_memo_hit_rate_above_half(self, monkeypatch, tmp_path):
        """The fig7 grid re-derives the same signatures constantly."""
        from repro.experiments.runner import run_battery

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        (run,) = run_battery(["fig7"], profile=True)
        hits = run.stats["rate_memo_hits"]
        misses = run.stats["rate_memo_misses"]
        assert hits + misses > 0
        assert hits / (hits + misses) > 0.5
