"""Locality / cache-filtering model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.cache import ORDER_FACTORS, LocalityModel, dram_fraction, l2_pressure


class TestLocalityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityModel(reuse_fraction=1.5)
        with pytest.raises(ValueError):
            LocalityModel(order_sensitivity=-0.1)
        with pytest.raises(ValueError):
            LocalityModel(footprint=-1)

    def test_no_reuse_means_all_dram(self):
        loc = LocalityModel(reuse_fraction=0.0)
        assert dram_fraction(loc, 1.0) == pytest.approx(1.0)

    def test_full_order_insensitive_reuse_survives_scattering(self):
        loc = LocalityModel(reuse_fraction=0.4, order_sensitivity=0.0)
        assert dram_fraction(loc, ORDER_FACTORS["hardware"]) == pytest.approx(0.6)
        assert dram_fraction(loc, ORDER_FACTORS["slate"]) == pytest.approx(0.6)

    def test_order_sensitive_reuse_lost_under_hardware(self):
        loc = LocalityModel(reuse_fraction=0.4, order_sensitivity=1.0)
        hw = dram_fraction(loc, ORDER_FACTORS["hardware"])
        slate = dram_fraction(loc, ORDER_FACTORS["slate"])
        assert slate == pytest.approx(0.6)
        assert hw == pytest.approx(1 - 0.4 * 0.25)
        assert hw > slate  # in-order execution sends less traffic to DRAM

    def test_pressure_degrades_reuse(self):
        loc = LocalityModel(reuse_fraction=0.5, order_sensitivity=0.5)
        alone = dram_fraction(loc, 1.0, pressure=1.0)
        contended = dram_fraction(loc, 1.0, pressure=0.5)
        assert contended > alone

    def test_invalid_args(self):
        loc = LocalityModel(reuse_fraction=0.5)
        with pytest.raises(ValueError):
            dram_fraction(loc, order_factor=1.5)
        with pytest.raises(ValueError):
            dram_fraction(loc, 1.0, pressure=0.0)


class TestL2Pressure:
    def test_sole_tenant_fits(self):
        assert l2_pressure(1e6, 0.0, 3e6) == 1.0

    def test_both_fit_no_pressure(self):
        assert l2_pressure(1e6, 1e6, 3e6) == 1.0

    def test_contention_reduces_pressure(self):
        p = l2_pressure(4e6, 4e6, 3e6)
        assert 0.1 <= p < 1.0

    def test_zero_footprint_unaffected(self):
        assert l2_pressure(0.0, 100e6, 3e6) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            l2_pressure(1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            l2_pressure(-1.0, 1.0, 1.0)


@given(
    reuse=st.floats(min_value=0, max_value=1),
    sens=st.floats(min_value=0, max_value=1),
    order=st.floats(min_value=0, max_value=1),
    pressure=st.floats(min_value=0.01, max_value=1),
)
def test_dram_fraction_always_valid(reuse, sens, order, pressure):
    loc = LocalityModel(reuse_fraction=reuse, order_sensitivity=sens)
    frac = dram_fraction(loc, order, pressure)
    assert 0.0 <= frac <= 1.0


@given(
    reuse=st.floats(min_value=0, max_value=1),
    sens=st.floats(min_value=0, max_value=1),
    lo=st.floats(min_value=0, max_value=1),
    hi=st.floats(min_value=0, max_value=1),
)
def test_better_order_never_increases_dram_traffic(reuse, sens, lo, hi):
    """dram_fraction is monotone non-increasing in order quality."""
    lo, hi = min(lo, hi), max(lo, hi)
    loc = LocalityModel(reuse_fraction=reuse, order_sensitivity=sens)
    assert dram_fraction(loc, hi) <= dram_fraction(loc, lo) + 1e-12


@given(
    own=st.floats(min_value=0, max_value=1e9),
    others=st.floats(min_value=0, max_value=1e9),
    cap=st.floats(min_value=1.0, max_value=1e8),
)
def test_l2_pressure_bounded_and_monotone(own, others, cap):
    p = l2_pressure(own, others, cap)
    assert 0.1 <= p <= 1.0
    # More co-runner footprint can only hurt.
    p_more = l2_pressure(own, others * 2 + 1, cap)
    assert p_more <= p + 1e-12
