"""CLI smoke tests (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd, extra in [
            ("experiments", []),
            ("ablations", []),
            ("profile", ["BS"]),
            ("transform", ["-"]),
            ("pair", ["BS", "RG"]),
            ("serve", []),
            ("client", ["MM"]),
            ("loadgen", []),
        ]:
            args = parser.parse_args([cmd, *extra])
            assert callable(args.func)

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--socket", "/tmp/s.sock", "--devices", "2",
             "--max-inflight", "8", "--duration", "0.5"]
        )
        assert args.socket == "/tmp/s.sock"
        assert args.devices == 2
        assert args.max_inflight == 8
        assert args.duration == 0.5

    def test_loadgen_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--clients", "16", "--mode", "open", "--rate", "50",
             "--mix", "BS:2,MM:1", "--threads", "--json", "out.json"]
        )
        assert args.clients == 16
        assert args.mode == "open"
        assert args.threads is True
        assert args.json == "out.json"

    def test_loadgen_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--mode", "bursty"])


class TestCommands:
    def test_profile_command(self, capsys):
        assert main(["profile", "RG", "--launches", "1"]) == 0
        out = capsys.readouterr().out
        assert "==PROF==" in out
        assert "intensity class: L_C" in out

    def test_profile_slate_mode(self, capsys):
        assert main(["profile", "GS", "--slate", "--launches", "1"]) == 0
        assert "M_M" in capsys.readouterr().out

    def test_transform_command(self, capsys, monkeypatch, tmp_path):
        src = tmp_path / "k.cu"
        src.write_text("__global__ void k(float* p) { p[blockIdx.x] = 1.f; }\n")
        assert main(["transform", str(src)]) == 0
        out = capsys.readouterr().out
        assert "k_slate" in out
        assert "atomicAdd(&slateIdx, SLATE_ITERS)" in out

    def test_transform_no_kernels(self, capsys, tmp_path):
        src = tmp_path / "host.c"
        src.write_text("int main() { return 0; }\n")
        assert main(["transform", str(src)]) == 1

    def test_pair_command(self, capsys):
        assert main(["pair", "rg", "rg"]) == 0
        out = capsys.readouterr().out
        assert "CUDA" in out and "Slate" in out and "ANTT" in out

    def test_experiments_selected_key(self, capsys):
        assert main(["experiments", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "Figure 1" in out


class TestOccupancyCommand:
    def test_occupancy_report(self, capsys):
        from repro.__main__ import main

        assert main(["occupancy", "256", "--regs", "64", "--smem", "16384"]) == 0
        out = capsys.readouterr().out
        assert "limited by registers" in out
        assert "block-size sweep" in out

    def test_occupancy_v100(self, capsys):
        from repro.__main__ import main

        assert main(["occupancy", "128", "--device", "v100"]) == 0
        assert "V100" in capsys.readouterr().out


class TestReportCommand:
    def test_report_writes_selected_experiments(self, capsys, tmp_path):
        from repro.__main__ import main

        out_path = tmp_path / "report.md"
        assert main(["report", "--output", str(out_path), "fig1", "fig3"]) == 0
        text = out_path.read_text()
        assert "# Slate reproduction" in text
        assert "Figure 1" in text and "knee" in text
        assert "Figure 3" in text and "isomorphic" in text
        assert "Figure 7" not in text  # not selected


class TestTraceAndTune:
    def test_tune_command(self, capsys):
        from repro.__main__ import main

        assert main(["tune", "GS"]) == 0
        out = capsys.readouterr().out
        assert "<-- best" in out
        assert "vs the paper's fixed 10" in out

    def test_trace_command_with_chrome_export(self, capsys, tmp_path):
        import json

        from repro.__main__ import main

        chrome = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--apps",
                    "4",
                    "--pattern",
                    "bursty",
                    "--seed",
                    "2",
                    "--chrome",
                    str(chrome),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "SM allocation timeline" in out
        assert "utilization" in out
        events = json.loads(chrome.read_text())
        assert events and all(e["ph"] == "X" for e in events)

    def test_trace_under_cuda(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "--runtime", "CUDA", "--apps", "3"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_trace_export_perfetto_is_valid(self, capsys, tmp_path):
        import json

        from repro.__main__ import main
        from repro.obs.validate import validate_file

        out = tmp_path / "perfetto.json"
        assert (
            main(
                ["trace", "--apps", "4", "--pattern", "bursty", "--export",
                 "perfetto", str(out)]
            )
            == 0
        )
        assert "perfetto trace written" in capsys.readouterr().out
        assert validate_file(out) == []
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert payload["metadata"]["pattern"] == "bursty"

    def test_trace_export_jsonl(self, capsys, tmp_path):
        import json

        from repro.__main__ import main

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--apps", "2", "--export", "jsonl", str(out)]) == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert any(line["type"] == "event" for line in lines[1:])

    def test_trace_export_unknown_format(self, capsys, tmp_path):
        from repro.__main__ import main

        rc = main(["trace", "--apps", "2", "--export", "svg", str(tmp_path / "x")])
        assert rc == 2
        assert "unknown export format" in capsys.readouterr().err

    def test_trace_empty_apps_exits_cleanly(self, capsys):
        """Regression: a degenerate arrival trace must not stack-trace."""
        from repro.__main__ import main

        assert main(["trace", "--apps", "0"]) == 0
        out = capsys.readouterr().out
        assert "(empty timeline)" in out
        assert "0 tenants" in out

    def test_trace_empty_apps_still_writes_valid_export(self, capsys, tmp_path):
        from repro.__main__ import main
        from repro.obs.validate import validate_file

        out = tmp_path / "empty.json"
        assert main(["trace", "--apps", "0", "--export", "perfetto", str(out)]) == 0
        assert validate_file(out) == []


class TestServeCommands:
    @pytest.fixture
    def live_server(self, tmp_path):
        from repro.serve.server import ServeConfig, ServerThread

        sock = str(tmp_path / "slate.sock")
        assert len(sock) < 100
        with ServerThread(ServeConfig(socket_path=sock)):
            yield sock

    def test_client_command_end_to_end(self, capsys, live_server):
        assert main(
            ["client", "MM", "--socket", live_server, "--reps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "registered MM" in out
        assert "launch 1:" in out and "launch 2:" in out
        assert "server:" in out

    def test_loadgen_command_end_to_end(self, capsys, live_server):
        assert main(
            ["loadgen", "--socket", live_server, "--clients", "2",
             "--requests", "3", "--threads"]
        ) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "p99" in out

    def test_loadgen_json_output(self, capsys, live_server, tmp_path):
        import json

        path = tmp_path / "report.json"
        assert main(
            ["loadgen", "--socket", live_server, "--clients", "1",
             "--requests", "2", "--threads", "--json", str(path)]
        ) == 0
        body = json.loads(path.read_text())
        assert body["completed"] == 2
        assert body["errors"] == 0

    def test_client_command_unreachable_socket(self, capsys, tmp_path):
        rc = main(
            ["client", "MM", "--socket", str(tmp_path / "nope.sock"),
             "--connect-retries", "0"]
        )
        assert rc == 1
        assert "could not connect" in capsys.readouterr().err


class TestObsCommand:
    def test_obs_dump_is_json(self, capsys):
        import json

        from repro.__main__ import main

        assert main(["obs", "dump"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms", "sources"}
        assert "engine" in snapshot["sources"]

    def test_obs_validate_accepts_good_trace(self, capsys, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "t.json"
        assert main(["trace", "--apps", "2", "--export", "chrome", str(out)]) == 0
        capsys.readouterr()
        assert main(["obs", "validate", str(out)]) == 0
        assert "valid trace-event JSON" in capsys.readouterr().out

    def test_obs_validate_rejects_bad_file(self, capsys, tmp_path):
        import json

        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"ph": "i"}]))
        assert main(["obs", "validate", str(bad)]) == 1
        assert "problem" in capsys.readouterr().err
