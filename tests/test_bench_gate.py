"""The perf-regression gate: tolerance math, missing rows, CLI exit codes."""

import json

import pytest

from repro.bench import compare_benchmarks, load_bench_file
from repro.bench.gate import GateResult


def row(us):
    return {"us_per_launch": us, "launches": 1000}


def test_within_tolerance_passes():
    result = compare_benchmarks(
        {"churn": row(100.0)}, {"churn": row(120.0)}, tolerance=0.25
    )
    assert result.ok
    assert result.rows[0].ratio == pytest.approx(1.2)


def test_beyond_tolerance_fails():
    result = compare_benchmarks(
        {"churn": row(100.0)}, {"churn": row(130.0)}, tolerance=0.25
    )
    assert not result.ok
    assert result.regressions[0].name == "churn"
    assert "REGRESSED" in result.describe()


def test_improvement_passes():
    result = compare_benchmarks({"churn": row(100.0)}, {"churn": row(50.0)})
    assert result.ok


def test_boundary_is_not_a_regression():
    result = compare_benchmarks(
        {"churn": row(100.0)}, {"churn": row(125.0)}, tolerance=0.25
    )
    assert result.ok  # strict inequality: exactly at the limit passes


def test_rows_in_only_one_file_are_informational():
    result = compare_benchmarks(
        {"old_row": row(10.0)}, {"new_row": row(999.0)}
    )
    assert result.ok
    by_name = {r.name: r for r in result.rows}
    assert by_name["old_row"].current is None
    assert by_name["new_row"].baseline is None
    assert "new row" in by_name["new_row"].describe()


def test_multiple_rows_mixed_verdicts():
    baseline = {"a": row(100.0), "b": row(100.0), "c": row(100.0)}
    current = {"a": row(90.0), "b": row(200.0), "c": row(101.0)}
    result = compare_benchmarks(baseline, current, tolerance=0.1)
    assert [r.name for r in result.regressions] == ["b"]


def test_row_restriction():
    baseline = {"a": row(100.0), "b": row(100.0)}
    current = {"a": row(100.0), "b": row(500.0)}
    assert compare_benchmarks(baseline, current, rows=["a"]).ok


def test_missing_metric_is_skipped():
    result = compare_benchmarks(
        {"churn": {"other_metric": 5}}, {"churn": row(100.0)}
    )
    assert result.ok
    assert result.rows[0].baseline is None


def test_metric_less_row_describes_without_crash():
    """A new row with no watched metric at all (queue_churn shape)."""
    result = compare_benchmarks({}, {"queue_churn": {"ops_per_sec": 5}})
    assert result.ok
    assert "no us_per_launch metric" in result.describe()


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError, match="tolerance"):
        compare_benchmarks({}, {}, tolerance=-0.1)


def test_non_numeric_metric_rejected():
    with pytest.raises(ValueError, match="numeric"):
        compare_benchmarks(
            {"churn": {"us_per_launch": "fast"}}, {"churn": row(1.0)}
        )


def test_load_bench_file_roundtrip(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"churn": row(42.0)}))
    assert load_bench_file(path)["churn"]["us_per_launch"] == 42.0


def test_load_bench_file_rejects_non_object(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="bench rows"):
        load_bench_file(path)


def test_cli_exit_codes(tmp_path, capsys):
    from benchmarks.check_regression import main

    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps({"churn": row(100.0)}))

    cur.write_text(json.dumps({"churn": row(110.0)}))
    assert main([str(base), str(cur)]) == 0
    assert "PASS" in capsys.readouterr().out

    cur.write_text(json.dumps({"churn": row(300.0)}))
    assert main([str(base), str(cur), "--tolerance", "0.5"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "REGRESSED" in out

    # A tighter metric choice works end to end.
    cur.write_text(json.dumps({"churn": {"us_per_launch": 100.0, "launches": 900}}))
    assert main([str(base), str(cur), "--metric", "launches", "--tolerance", "0.0"]) == 0


def test_empty_files_pass():
    assert compare_benchmarks({}, {}) == GateResult(rows=())
