"""Device/host/cost configuration tests."""

import dataclasses

import pytest

from repro.config import TESLA_V100, TITAN_XP, CostModel, DeviceConfig, HostConfig


class TestTitanXp:
    def test_paper_testbed_values(self):
        assert TITAN_XP.num_sms == 30
        assert TITAN_XP.dram_capacity == 12 * 1024**3
        assert TITAN_XP.dram_bandwidth == pytest.approx(547.6e9)
        # 3840 CUDA cores at ~1.58 GHz with FMA: ~12.15 TFLOP/s.
        assert TITAN_XP.device_flops == pytest.approx(12.15e12, rel=0.01)

    def test_fig1_knee_built_in(self):
        """sm_bw_limit is calibrated so 9 SMs saturate DRAM."""
        sms_to_saturate = TITAN_XP.dram_bandwidth / TITAN_XP.sm_bw_limit
        assert 8.9 <= sms_to_saturate <= 9.1

    def test_with_sms(self):
        half = TITAN_XP.with_sms(15)
        assert half.num_sms == 15
        assert half.dram_bandwidth == TITAN_XP.dram_bandwidth
        assert TITAN_XP.num_sms == 30  # original untouched (frozen)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TITAN_XP.num_sms = 10  # type: ignore[misc]

    def test_sm_flops_derived(self):
        explicit = DeviceConfig(sm_flops=1e12)
        assert explicit.sm_flops == 1e12
        derived = DeviceConfig()
        assert derived.sm_flops == pytest.approx(
            derived.cores_per_sm * 2 * derived.clock_hz
        )


class TestV100:
    def test_bigger_in_every_dimension(self):
        assert TESLA_V100.num_sms > TITAN_XP.num_sms
        assert TESLA_V100.dram_bandwidth > TITAN_XP.dram_bandwidth
        assert TESLA_V100.dram_capacity > TITAN_XP.dram_capacity
        assert TESLA_V100.l2_capacity > TITAN_XP.l2_capacity

    def test_hbm2_saturation_point(self):
        sms = TESLA_V100.dram_bandwidth / TESLA_V100.sm_bw_limit
        assert 14 <= sms <= 18  # ~16 SMs of streaming demand


class TestCostModel:
    def test_all_costs_non_negative(self):
        costs = CostModel()
        for field in dataclasses.fields(costs):
            assert getattr(costs, field.name) >= 0, field.name

    def test_overridable(self):
        costs = CostModel(pipe_roundtrip=1e-3)
        assert costs.pipe_roundtrip == 1e-3
        assert CostModel().pipe_roundtrip != 1e-3

    def test_atomic_latency_exceeds_service_time(self):
        """Round-trip latency must dominate the serialized service slot."""
        costs = CostModel()
        assert costs.atomic_latency > costs.atomic_service_time

    def test_interference_penalty_in_range(self):
        assert 0 <= CostModel().dram_interference_penalty < 1


class TestHost:
    def test_pcie_parameters(self):
        host = HostConfig()
        assert host.pcie_bandwidth > 0
        assert host.pcie_latency >= 0
        assert host.num_cores == 20  # the paper's Xeon E5-2670 node
