"""Fleet-aggregation tests: registry-state merging, skew bookkeeping,
and the Prometheus exposition (rendered and then re-validated by the
repo's own format checker)."""

import pytest

from repro.obs.aggregate import (
    ShardScrape,
    aggregate_fleet,
    merge_histogram_states,
    merge_registry_states,
    prom_name,
    to_prometheus,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.validate import validate_prometheus


def state_of(values, name="h"):
    h = Histogram(name)
    for v in values:
        h.observe(v)
    return h.state()


class TestMergeRegistryStates:
    def test_counters_sum(self):
        merged = merge_registry_states([
            {"counters": {"a": 2, "b": 1}},
            {"counters": {"a": 3}},
        ])
        assert merged["counters"] == {"a": 5, "b": 1}

    def test_gauges_sum_except_slo(self):
        merged = merge_registry_states([
            {"gauges": {"inflight": 2.0, "slo.x.burn.30s": 1.0,
                        "slo.x.good_ratio": 0.99}},
            {"gauges": {"inflight": 3.0, "slo.x.burn.30s": 4.0,
                        "slo.x.good_ratio": 0.90}},
        ])
        assert merged["gauges"]["inflight"] == 5.0
        # Worst shard wins: max burn, min good ratio.
        assert merged["gauges"]["slo.x.burn.30s"] == 4.0
        assert merged["gauges"]["slo.x.good_ratio"] == 0.90

    def test_histograms_bucket_merge(self):
        merged = merge_registry_states([
            {"histograms": {"lat": state_of([1.0, 2.0])}},
            {"histograms": {"lat": state_of([3.0])}},
        ])
        assert merged["histograms"]["lat"] == state_of([1.0, 2.0, 3.0])

    def test_merge_histogram_states_helper(self):
        merged = merge_histogram_states([state_of([1.0]), state_of([2.0])])
        assert merged == state_of([1.0, 2.0])

    def test_sources_numeric_sum_non_numeric_first(self):
        merged = merge_registry_states([
            {"sources": {"engine": {"events": 10, "policy": "table1"}}},
            {"sources": {"engine": {"events": 5, "policy": "other"}}},
        ])
        assert merged["sources"]["engine"]["events"] == 15
        assert merged["sources"]["engine"]["policy"] == "table1"

    def test_empty_and_none_states_skipped(self):
        merged = merge_registry_states([None, {}, {"counters": {"a": 1}}])
        assert merged["counters"] == {"a": 1}


class TestAggregateFleet:
    def make_scrapes(self):
        return [
            ShardScrape(shard=0, state={"counters": {"launches": 10}},
                        wall=100.0, sim_time=5.0, scraped_at=99.5),
            ShardScrape(shard=1, state={"counters": {"launches": 4}},
                        wall=100.0, sim_time=2.0, scraped_at=100.0),
        ]

    def test_fleet_merge_and_skew(self):
        fleet = aggregate_fleet(self.make_scrapes(), now=100.0)
        assert fleet["sim_time"] == 5.0
        assert fleet["registry"]["counters"]["launches"] == 14
        gauges = fleet["registry"]["gauges"]
        assert gauges["fleet.shard.0.sim_skew"] == 0.0
        assert gauges["fleet.shard.1.sim_skew"] == 3.0
        assert gauges["fleet.shard.0.scrape_age"] == pytest.approx(0.5)
        assert fleet["shards"]["1"]["sim_skew"] == 3.0

    def test_local_state_merged_in(self):
        fleet = aggregate_fleet(
            self.make_scrapes(),
            local_state={"counters": {"launches": 1, "serve.requests": 7}},
            now=100.0,
        )
        assert fleet["registry"]["counters"]["launches"] == 15
        assert fleet["registry"]["counters"]["serve.requests"] == 7

    def test_nested_fleet_gauges_stripped_from_scrapes(self):
        """A single-shard daemon self-reports fleet.shard.0.*; the router
        merging N of those must not sum them into garbage."""
        scrapes = [
            ShardScrape(
                shard=i,
                state={"gauges": {"fleet.shard.0.sim_time": 42.0, "x": 1.0}},
                sim_time=1.0, scraped_at=100.0,
            )
            for i in range(2)
        ]
        fleet = aggregate_fleet(scrapes, now=100.0)
        gauges = fleet["registry"]["gauges"]
        assert gauges["x"] == 2.0
        # This level's bookkeeping is the only fleet.shard.* authority.
        assert gauges["fleet.shard.0.sim_time"] == 1.0
        assert gauges["fleet.shard.1.sim_time"] == 1.0

    def test_failed_scrape_contributes_bookkeeping_only(self):
        scrapes = self.make_scrapes()
        scrapes.append(ShardScrape(shard=2, state=None, sim_time=0.0))
        fleet = aggregate_fleet(scrapes, now=100.0)
        assert fleet["registry"]["counters"]["launches"] == 14
        assert fleet["shards"]["2"]["registry"] is None
        assert fleet["registry"]["gauges"]["fleet.shard.2.sim_skew"] == 5.0


class TestPrometheus:
    def test_name_sanitization(self):
        assert prom_name("serve.latency.launch") == "repro_serve_latency_launch"
        assert prom_name("9weird-name!", namespace="") == "_9weird_name_"

    def test_histogram_series_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.0, 0.001, 0.002, 0.004):
            h.observe(v)
        text = to_prometheus(reg.export_state())
        lines = [l for l in text.splitlines() if l.startswith("repro_lat_bucket")]
        # Zero bucket first, +Inf last and equal to the count.
        assert lines[0] == 'repro_lat_bucket{le="0"} 1'
        assert lines[-1] == 'repro_lat_bucket{le="+Inf"} 4'
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert "repro_lat_count 4" in text
        assert "# TYPE repro_lat histogram" in text

    def test_exposition_validates(self):
        reg = MetricsRegistry()
        reg.counter("scheduler.decisions").inc(5)
        reg.gauge("serve.inflight").set(2.0)
        h = reg.histogram("serve.latency.launch")
        for v in (0.001, 0.01, 0.1, 1.0):
            h.observe(v)
        reg.register_source("engine", lambda: {"events": 42, "name": "x"})
        text = to_prometheus(reg.export_state())
        assert validate_prometheus(text) == []
        assert "repro_engine_events 42" in text
        assert "name" not in text.split("repro_engine_events")[1].splitlines()[0]

    def test_snapshot_shape_falls_back_to_quantile_gauges(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(0.5)
        text = to_prometheus(reg.snapshot())  # summaries, not bucket states
        assert "repro_lat_p99" in text
        assert "repro_lat_bucket" not in text
        assert validate_prometheus(text) == []

    def test_merged_fleet_state_validates(self):
        reg = MetricsRegistry()
        reg.counter("launches").inc(3)
        reg.histogram("lat").observe(0.25)
        state = reg.export_state()
        fleet = aggregate_fleet(
            [ShardScrape(shard=0, state=state, sim_time=1.0, scraped_at=1.0)],
            now=2.0,
        )
        text = to_prometheus(fleet["registry"])
        assert validate_prometheus(text) == []
        assert "repro_fleet_shard_0_sim_skew" in text
