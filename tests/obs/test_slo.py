"""SLO tracker tests with a deterministic clock: burn-rate arithmetic,
multi-window AND alerting, gauge surfacing, and config parsing."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import DEFAULT_TARGETS, SLOTarget, SLOTracker, load_slo_config


def make_tracker(eval_interval=0.0, **target_kwargs):
    defaults = dict(
        name="t", metric="m", threshold=0.1, objective=0.9,
        windows=(10.0, 40.0), alert_burn=2.0,
    )
    defaults.update(target_kwargs)
    reg = MetricsRegistry()
    target = SLOTarget(**defaults)
    clock = {"now": 0.0}
    tracker = SLOTracker(
        (target,), registry=reg, clock=lambda: clock["now"],
        eval_interval=eval_interval,
    )
    return tracker, reg, clock


class TestTarget:
    def test_objective_bounds_validated(self):
        with pytest.raises(ValueError):
            SLOTarget(name="x", metric="m", threshold=1.0, objective=1.0)
        with pytest.raises(ValueError):
            SLOTarget(name="x", metric="m", threshold=1.0, objective=0.0)

    def test_windows_sorted_and_required(self):
        t = SLOTarget(name="x", metric="m", threshold=1.0, windows=(60, 5))
        assert t.windows == (5.0, 60.0)
        with pytest.raises(ValueError):
            SLOTarget(name="x", metric="m", threshold=1.0, windows=())

    def test_error_budget(self):
        t = SLOTarget(name="x", metric="m", threshold=1.0, objective=0.99)
        assert t.error_budget == pytest.approx(0.01)


class TestBurnRates:
    def test_all_good_burns_zero(self):
        tracker, reg, clock = make_tracker()
        for i in range(20):
            clock["now"] = float(i) * 0.1
            tracker.record("m", 0.05)
        rows = tracker.evaluate()
        assert rows[0]["burning"] is False
        assert rows[0]["good_ratio"] == 1.0
        assert all(b == 0.0 for b in rows[0]["burn"].values())

    def test_burn_is_bad_fraction_over_budget(self):
        # objective 0.9 -> budget 0.1; half the observations bad -> burn 5x.
        tracker, reg, clock = make_tracker()
        for i in range(10):
            clock["now"] = float(i) * 0.1
            tracker.record("m", 0.05 if i % 2 == 0 else 0.5)
        rows = tracker.evaluate()
        for burn in rows[0]["burn"].values():
            assert burn == pytest.approx(5.0)
        assert rows[0]["good_ratio"] == pytest.approx(0.5)
        assert rows[0]["burning"] is True
        assert reg.gauge("slo.t.burning").value == 1.0
        assert reg.gauge("slo.t.burn.10s").value == pytest.approx(5.0)
        assert reg.gauge("slo.t.good_ratio").value == pytest.approx(0.5)

    def test_untracked_metric_is_ignored(self):
        tracker, reg, clock = make_tracker()
        tracker.record("other.metric", 99.0)
        assert tracker.evaluate()[0]["burn"]["10s"] == 0.0

    def test_empty_window_burns_zero(self):
        tracker, reg, clock = make_tracker()
        assert all(b == 0.0 for b in tracker.evaluate()[0]["burn"].values())


class TestMultiWindowAlerting:
    def test_short_window_alone_does_not_alert(self):
        """Old badness outside the short window: the long window still
        burns but the short one is clean -> no alert (multi-window AND).
        Evaluation is deferred to the end — during the burst itself both
        windows burn, which legitimately alerts."""
        tracker, reg, clock = make_tracker(eval_interval=float("inf"))
        tracker.evaluate()  # prime _last_eval so record() never evaluates
        # Badness at t=0..2 (inside the 40s window only once we move on).
        for i in range(10):
            clock["now"] = float(i) * 0.2
            tracker.record("m", 9.9)
        # Clean traffic in the recent short window.
        for i in range(30):
            clock["now"] = 25.0 + float(i) * 0.2
            tracker.record("m", 0.01)
        rows = tracker.evaluate()
        burns = rows[0]["burn"]
        assert burns["40s"] > 2.0  # long window still remembers
        assert burns["10s"] < 2.0  # short window is clean
        assert rows[0]["burning"] is False
        assert reg.counter("slo.alerts.fired").value == 0

    def test_alert_fires_once_per_transition(self):
        tracker, reg, clock = make_tracker()
        for i in range(10):
            clock["now"] = float(i) * 0.1
            tracker.record("m", 9.9)
        tracker.evaluate()
        tracker.evaluate()  # still burning: no second increment
        assert reg.counter("slo.alerts.fired").value == 1
        # Recovery: windows age out, burning clears, then a new breach
        # fires a second alert.
        clock["now"] = 100.0
        for i in range(20):
            clock["now"] = 100.0 + float(i) * 0.1
            tracker.record("m", 0.01)
        assert tracker.evaluate()[0]["burning"] is False
        for i in range(20):
            clock["now"] = 110.0 + float(i) * 0.1
            tracker.record("m", 9.9)
        assert tracker.evaluate()[0]["burning"] is True
        assert reg.counter("slo.alerts.fired").value == 2

    def test_snapshot_shape(self):
        tracker, reg, clock = make_tracker()
        snap = tracker.snapshot()
        assert set(snap) == {"targets", "alerts_fired"}
        assert snap["targets"][0]["name"] == "t"
        assert set(snap["targets"][0]["burn"]) == {"10s", "40s"}


class TestConfig:
    def test_load_from_json_text(self):
        targets = load_slo_config(
            '[{"name": "a", "metric": "m", "threshold_ms": 250,'
            ' "objective": 0.95, "windows_s": [5, 60], "alert_burn": 3.0}]'
        )
        assert len(targets) == 1
        t = targets[0]
        assert t.threshold == pytest.approx(0.250)
        assert t.windows == (5.0, 60.0)
        assert t.alert_burn == 3.0

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(
            [{"name": "a", "metric": "m", "threshold": 0.5}]
        ))
        targets = load_slo_config(str(path))
        assert targets[0].threshold == 0.5
        assert targets[0].objective == 0.99  # default

    def test_threshold_required(self):
        with pytest.raises(ValueError):
            load_slo_config('[{"name": "a", "metric": "m"}]')

    def test_must_be_a_list(self):
        with pytest.raises(ValueError):
            load_slo_config('{"name": "a"}')

    def test_default_targets_cover_launch_latency(self):
        metrics = {t.metric for t in DEFAULT_TARGETS}
        assert "serve.latency.launch" in metrics
        assert "serve.sim_latency.launch" in metrics
