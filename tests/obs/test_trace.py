"""Core trace-sink behaviour: enable/disable contract, capture, bounds."""

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_SINK, EnvTracerAdapter, NullSink, TraceSink
from repro.sim import Environment


class TestDefaults:
    def test_disabled_by_default(self):
        assert obs_trace.ENABLED is False
        assert obs_trace.get_sink() is NULL_SINK
        assert NULL_SINK.enabled is False

    def test_null_sink_records_nothing(self):
        # Emitting against the default sink is a silent no-op.
        obs_trace.instant("x", 0.0, "scheduler", "queue", k=1)
        obs_trace.complete("x", 0.0, 1.0, "tenants", "BS")
        obs_trace.allocation(0.0, {"BS": (0, 29)})
        assert obs_trace.get_sink() is NULL_SINK

    def test_null_sink_has_no_dict(self):
        assert not hasattr(NullSink(), "__dict__")


class TestCapture:
    def test_capture_installs_and_restores(self):
        with obs_trace.capture() as sink:
            assert obs_trace.ENABLED is True
            assert obs_trace.get_sink() is sink
            obs_trace.instant("mark", 1.0, "scheduler", "queue")
        assert obs_trace.ENABLED is False
        assert obs_trace.get_sink() is NULL_SINK
        assert len(sink) == 1
        assert sink.events[0].name == "mark"

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs_trace.capture():
                raise RuntimeError("boom")
        assert obs_trace.ENABLED is False
        assert obs_trace.get_sink() is NULL_SINK

    def test_captures_nest(self):
        with obs_trace.capture() as outer:
            obs_trace.instant("a", 0.0, "scheduler", "queue")
            with obs_trace.capture() as inner:
                obs_trace.instant("b", 1.0, "scheduler", "queue")
            obs_trace.instant("c", 2.0, "scheduler", "queue")
        assert [e.name for e in outer.events] == ["a", "c"]
        assert [e.name for e in inner.events] == ["b"]

    def test_capture_metadata_copied(self):
        meta = {"seed": 7}
        with obs_trace.capture(metadata=meta) as sink:
            pass
        meta["seed"] = 8
        assert sink.metadata == {"seed": 7}


class TestSinkBound:
    def test_limit_drops_oldest_half_and_counts(self):
        sink = TraceSink(limit=10)
        for i in range(10):
            sink.instant(f"e{i}", float(i), "scheduler", "queue")
        assert len(sink) == 10 and sink.dropped == 0
        sink.instant("e10", 10.0, "scheduler", "queue")
        assert sink.dropped == 5
        assert len(sink) == 6
        # The newest events survive.
        assert sink.events[-1].name == "e10"
        assert sink.events[0].name == "e5"

    def test_limit_one_stays_bounded(self):
        sink = TraceSink(limit=1)
        for i in range(5):
            sink.instant(f"e{i}", float(i), "scheduler", "queue")
        assert len(sink) == 1
        assert sink.dropped == 4

    def test_queries(self):
        sink = TraceSink()
        sink.complete("BS", 0.0, 2.0, "tenants", "BS")
        sink.instant("launch", 0.5, "tenants", "GS")
        assert [e.name for e in sink.of_name("BS")] == ["BS"]
        assert len(sink.of_track("tenants")) == 2
        assert len(sink.of_track("tenants", "GS")) == 1
        assert sink.end_time() == 2.0
        assert TraceSink().end_time() == 0.0


class TestSpan:
    def test_span_emits_complete_event(self):
        env = Environment()
        with obs_trace.capture() as sink:
            with obs_trace.span("work", env, "daemon", "compile", kernel="BS"):
                env.run(until=2.5)
        (event,) = sink.events
        assert event.ph == "X"
        assert event.ts == 0.0 and event.dur == 2.5
        assert event.args == {"kernel": "BS"}

    def test_span_noop_when_disabled(self):
        env = Environment()
        with obs_trace.span("work", env, "daemon", "compile"):
            pass  # must not raise or record anywhere


class TestEnvTracerAdapter:
    def test_engine_events_forwarded_as_instants(self):
        adapter = EnvTracerAdapter()
        env = Environment(tracer=adapter)

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        with obs_trace.capture() as sink:
            env.run(until=env.process(proc(env)))
        engine = sink.of_track("engine", "events")
        assert engine and all(e.name == "engine.event" for e in engine)
        assert adapter.forwarded == len(engine)
        kinds = {e.args["kind"] for e in engine}
        assert "Timeout" in kinds

    def test_adapter_respects_disabled(self):
        adapter = EnvTracerAdapter()
        env = Environment(tracer=adapter)
        env.run(until=1.0)
        assert adapter.forwarded == 0

    def test_adapter_predicate_filters(self):
        from repro.sim import Timeout

        adapter = EnvTracerAdapter(predicate=lambda e: not isinstance(e, Timeout))
        env = Environment(tracer=adapter)

        def proc(env):
            yield env.timeout(1.0)

        with obs_trace.capture() as sink:
            env.run(until=env.process(proc(env)))
        assert all(e.args["kind"] != "Timeout" for e in sink.of_track("engine"))
