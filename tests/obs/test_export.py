"""Exporter tests: Perfetto/Chrome trace-event JSON and JSONL streams."""

import json

from repro.kernels import blackscholes, quasirandom
from repro.obs import trace as obs_trace
from repro.obs.export import (
    run_metadata,
    to_chrome_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import TraceSink
from repro.obs.validate import validate_chrome_trace, validate_file
from repro.sim import Environment
from repro.slate import SlateRuntime


def _corun_capture():
    """Run a BS+RG corun (shrink + grow) under a capture; return the sink."""
    with obs_trace.capture(metadata=run_metadata(seed=3)) as sink:
        env = Environment()
        rt = SlateRuntime(env)
        bs, rg = blackscholes(), quasirandom(num_blocks=9600)
        rt.preload_profiles([bs, rg])

        def app(name, spec, delay=0.0):
            session = rt.create_session(name)
            yield env.timeout(delay)
            yield from session.launch(spec)
            yield from session.synchronize()

        pa = env.process(app("bs", bs))
        pb = env.process(app("rg", rg, delay=0.2e-3))
        env.run(until=pa & pb)
    return sink


class TestChromeExport:
    def test_corun_trace_is_valid_and_complete(self):
        sink = _corun_capture()
        events = to_chrome_events(sink)
        assert validate_chrome_trace(events) == []

        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        groups = set(names.values())
        assert {"SMs", "tenants", "scheduler", "daemon", "device"} <= groups

        sm_pid = next(p for p, n in names.items() if n == "SMs")
        sm_spans = [e for e in events if e["pid"] == sm_pid and e["ph"] == "X"]
        assert sm_spans, "per-SM occupancy tracks missing"
        assert {e["name"] for e in sm_spans} == {"BS", "RG"}
        # The device has 30 SMs and the corun splits it, so many rows exist.
        assert len({e["tid"] for e in sm_spans}) == 30

        tenant_pid = next(p for p, n in names.items() if n == "tenants")
        tenant_spans = [
            e for e in events if e["pid"] == tenant_pid and e["ph"] == "X"
        ]
        assert {e["name"] for e in tenant_spans} == {"BS", "RG"}
        assert all(e["dur"] > 0 for e in tenant_spans)

        # The corun shrinks BS: scheduler resize markers and device
        # retreats must both be present.
        assert any(e["name"] == "resize" for e in events)
        assert any(e["name"] == "kernel.retreat" for e in events)
        assert any(e["name"].startswith("decide.") for e in events)

    def test_instants_carry_thread_scope(self):
        sink = _corun_capture()
        instants = [e for e in to_chrome_events(sink) if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_timestamps_in_microseconds(self):
        sink = _corun_capture()
        events = [e for e in to_chrome_events(sink) if e["ph"] != "M"]
        # The replay spans milliseconds of simulated time, so microsecond
        # timestamps must reach into the hundreds.
        assert max(e["ts"] for e in events) > 100.0

    def test_write_chrome_trace_file(self, tmp_path):
        sink = _corun_capture()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, sink)
        assert count > 0
        assert validate_file(path) == []
        payload = json.loads(path.read_text())
        assert payload["metadata"]["seed"] == 3
        assert payload["metadata"]["dropped_events"] == 0
        assert payload["metadata"]["tool"] == "repro-obs"

    def test_empty_sink_exports_cleanly(self, tmp_path):
        path = tmp_path / "empty.json"
        assert write_chrome_trace(path, TraceSink()) == 0
        assert validate_file(path) == []

    def test_dropped_count_surfaces_in_metadata(self, tmp_path):
        sink = TraceSink(limit=4)
        for i in range(9):
            sink.instant(f"e{i}", float(i), "scheduler", "queue")
        path = tmp_path / "dropped.json"
        write_chrome_trace(path, sink)
        payload = json.loads(path.read_text())
        assert payload["metadata"]["dropped_events"] == sink.dropped > 0


class TestJsonl:
    def test_jsonl_round_trip(self, tmp_path):
        sink = _corun_capture()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(path, sink)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["seed"] == 3
        events = [line for line in lines[1:] if line["type"] == "event"]
        assert len(events) == count == len(sink)
        # JSONL keeps simulated seconds.
        assert all(e["ts"] < 1.0 for e in events)


class TestRunMetadata:
    def test_base_fields(self):
        meta = run_metadata(seed=11, extra_field="x")
        assert meta["tool"] == "repro-obs"
        assert meta["seed"] == 11
        assert meta["extra_field"] == "x"
        assert "python" in meta and "git_rev" in meta

    def test_config_fingerprint_is_stable(self):
        from repro.config import TITAN_XP, CostModel

        a = run_metadata(config=(TITAN_XP, CostModel()))
        b = run_metadata(config=(TITAN_XP, CostModel()))
        assert a["config_fingerprint"] == b["config_fingerprint"]


class TestValidator:
    def test_flags_missing_fields(self):
        problems = validate_chrome_trace([{"ph": "i", "ts": 0.0}])
        assert problems and "missing" in problems[0]

    def test_flags_unbalanced_spans(self):
        events = [
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
        ]
        problems = validate_chrome_trace(events)
        assert any("unclosed" in p for p in problems)

    def test_flags_bad_payload(self):
        assert validate_chrome_trace(42)
        assert validate_chrome_trace({"nope": []})

    def test_parse_error_is_a_problem(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        problems = validate_file(path)
        assert problems and "cannot load" in problems[0]
