"""Property tests for the log-bucketed histogram's merge algebra.

The fleet-aggregation layer rests on one claim: merging per-shard
histograms is *exact at bucket granularity* — ``h1 + h2`` is
indistinguishable from a histogram fed the concatenated stream.  These
tests pin that claim (plus the quantile error bound and the wire
round-trip) with hypothesis-generated streams, including the edge cases
a latency stream actually produces: empty shards, single values, zeros,
negatives, and values past the clamp range.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import Histogram

# Latency-like positive magnitudes, spanning the representable range and
# a little past it (forcing index clamping at both ends).
positive_values = st.floats(
    min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
)
# Within the clamp range [GROWTH**MIN_INDEX, GROWTH**MAX_INDEX]: the
# one-bucket error bound only holds where no index clamping occurs.
representable_values = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
# Anything observable: zeros and negatives land in the zero bucket.
any_values = st.floats(
    min_value=-1e9, max_value=1e12, allow_nan=False, allow_infinity=False
)
streams = st.lists(any_values, max_size=200)
quantiles = st.sampled_from([0.01, 0.25, 0.50, 0.90, 0.99, 0.999])


def build(values, name="h"):
    h = Histogram(name)
    for v in values:
        h.observe(v)
    return h


def assert_states_equal(a, b):
    """Bucket state must match exactly; ``sum`` only up to float
    addition order (merge adds totals in a different order than the
    concatenated stream)."""
    sa, sb = dict(a), dict(b)
    assert sa.pop("sum") == pytest.approx(sb.pop("sum"), rel=1e-9, abs=1e-12)
    assert sa == sb


class TestMergeAlgebra:
    @given(streams, streams)
    @settings(max_examples=200, deadline=None)
    def test_merge_equals_concatenated_stream(self, xs, ys):
        merged = build(xs, "a") + build(ys, "b")
        concat = build(xs + ys)
        assert_states_equal(merged.state(), concat.state())

    @given(streams, streams)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative(self, xs, ys):
        ab = build(xs) + build(ys)
        ba = build(ys) + build(xs)
        assert_states_equal(ab.state(), ba.state())

    @given(streams, streams, streams)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_associative(self, xs, ys, zs):
        left = (build(xs) + build(ys)) + build(zs)
        right = build(xs) + (build(ys) + build(zs))
        assert_states_equal(left.state(), right.state())

    @given(streams, streams, quantiles)
    @settings(max_examples=200, deadline=None)
    def test_merged_quantiles_match_concatenated(self, xs, ys, q):
        """Same buckets + same count/min/max -> byte-identical quantiles."""
        merged = build(xs) + build(ys)
        concat = build(xs + ys)
        assert merged.quantile(q) == concat.quantile(q)

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_merge_with_empty_is_identity(self, xs):
        assert_states_equal((build(xs) + Histogram("empty")).state(), build(xs).state())

    def test_in_place_merge_returns_self(self):
        a, b = build([1.0, 2.0]), build([3.0])
        assert a.merge(b) is a
        assert a.count == 3


class TestQuantileAccuracy:
    @given(st.lists(representable_values, min_size=1, max_size=200), quantiles)
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_bucket_error_of_true_percentile(self, xs, q):
        """The estimate lands in the same bucket as the true order
        statistic, so it is within one GROWTH factor (~19%)."""
        h = build(xs)
        est = h.quantile(q)
        ordered = sorted(xs)
        k = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered) - 1e-9) - 1))
        true = ordered[k]
        # One bucket of relative error, with epsilon slack for the float
        # boundary between adjacent buckets.
        bound = Histogram.GROWTH * (1 + 1e-9)
        assert true / bound <= est <= true * bound

    @given(st.lists(positive_values, min_size=1, max_size=200), quantiles)
    @settings(max_examples=100, deadline=None)
    def test_quantile_clamped_to_observed_range(self, xs, q):
        h = build(xs)
        assert h.min <= h.quantile(q) <= h.max

    @given(st.lists(positive_values, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_quantile_monotone_in_q(self, xs):
        h = build(xs)
        qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]
        estimates = [h.quantile(q) for q in qs]
        assert estimates == sorted(estimates)


class TestEdges:
    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.state()["buckets"] == {}
        assert (h + Histogram("h2")).count == 0

    def test_single_value_every_quantile_is_that_value(self):
        h = build([0.125])
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.125)

    def test_zero_and_negative_values_use_zero_bucket(self):
        h = build([0.0, -3.0, 5.0])
        assert h.zero_count == 2
        assert sum(h.buckets.values()) == 1
        assert h.min == -3.0
        # The zero bucket covers the p50 target; negatives clamp there.
        assert h.quantile(0.5) == -3.0

    def test_overflow_clamps_and_counts(self):
        huge = 1e30
        h = build([huge])
        assert h.overflow == 1
        assert h.buckets == {Histogram.MAX_INDEX: 1}
        # Clamping to max keeps the estimate truthful anyway.
        assert h.quantile(0.9) == huge

    def test_underflow_clamps_low_without_overflow_count(self):
        h = build([1e-40])
        assert h.overflow == 0
        assert h.buckets == {Histogram.MIN_INDEX: 1}

    @given(streams)
    @settings(max_examples=100, deadline=None)
    def test_state_round_trips(self, xs):
        h = build(xs)
        clone = Histogram.from_state("h", h.state())
        assert clone.state() == h.state()
        # And the clone keeps merging/quantiling like the original.
        assert clone.quantile(0.9) == h.quantile(0.9)

    def test_state_survives_json(self):
        import json

        h = build([0.001, 0.5, 3.0, 3.0, 700.0])
        wired = json.loads(json.dumps(h.state()))
        assert Histogram.from_state("h", wired).state() == h.state()
