"""Metrics-registry tests: instruments, sources, and the compat shims."""

import json

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, registry


class TestInstruments:
    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b
        a.inc()
        a.inc(3)
        assert b.value == 4

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge(self):
        g = MetricsRegistry().gauge("g")
        g.set(2.5)
        g.inc()
        g.dec(0.5)
        assert g.value == 3.0

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        summary = h.summary()
        # The original summary keys stay backward-compatible...
        compat = {k: summary[k] for k in ("count", "sum", "min", "max", "mean")}
        assert compat == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        # ...and the log-bucket upgrade adds quantile estimates.
        assert {"p50", "p90", "p99", "p999"} <= set(summary)
        assert 1.0 <= summary["p50"] <= 3.0
        assert summary["p999"] == 3.0
        h.reset()
        assert h.count == 0 and h.mean == 0.0 and h.buckets == {}

    def test_snapshot_shape_and_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        parsed = json.loads(reg.to_json())
        assert parsed["counters"] == {"c": 1}

    def test_reset_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.reset_metrics()
        assert reg.counter("c").value == 0

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert "a" in reg and "z" not in reg
        assert reg.metric_names() == ["a", "b"]


class TestSources:
    def test_broken_source_does_not_kill_snapshot(self):
        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("nope")

        reg.register_source("bad", broken)
        snap = reg.snapshot()
        assert "error" in snap["sources"]["bad"]

    def test_process_registry_has_standard_sources(self):
        reg = registry()
        assert {"engine", "rates_memo", "occupancy_cache"} <= set(reg.source_names())
        engine = reg.source_snapshot("engine")
        assert "events_processed" in engine
        assert "trace_dropped" in engine

    def test_engine_source_tracks_aggregate(self):
        from repro.sim import Environment, aggregate_stats

        reg = registry()
        before = reg.source_snapshot("engine")["events_processed"]
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        env.run(until=env.process(proc(env)))
        after = reg.source_snapshot("engine")["events_processed"]
        assert after > before
        assert after == aggregate_stats().snapshot()["events_processed"]


class TestSchedulerMirrors:
    def test_scheduler_counters_grow_after_a_run(self):
        from repro.kernels import blackscholes
        from repro.sim import Environment
        from repro.slate import SlateRuntime

        reg = registry()
        before = reg.counter("scheduler.submits").value
        solo_before = reg.counter("scheduler.solo_launches").value
        env = Environment()
        rt = SlateRuntime(env)
        bs = blackscholes()
        rt.preload_profiles([bs])
        session = rt.create_session("app")

        def app(env):
            yield from session.launch(bs)
            yield from session.synchronize()

        env.run(until=env.process(app(env)))
        assert reg.counter("scheduler.submits").value == before + 1
        assert reg.counter("scheduler.solo_launches").value == solo_before + 1
        # The instance view still works (compat surface).
        assert rt.scheduler.solo_launches == 1

    def test_cluster_scheduler_stats_shim_still_works(self):
        from repro.kernels import blackscholes
        from repro.sim import Environment
        from repro.slate.cluster import SlateCluster

        env = Environment()
        cluster = SlateCluster(env, num_devices=2)
        stats = cluster.scheduler_stats()
        assert stats == {
            "decisions": 0,
            "solo_launches": 0,
            "corun_launches": 0,
            "resizes": 0,
            "preemptions": 0,
            "rejections": 0,
            "waiting": 0,
            "running": 0,
            "policy": "table1",
        }
