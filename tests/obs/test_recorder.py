"""Flight-recorder tests: ring bounds, eviction accounting, sink
stacking, Perfetto dumps, and the wire round-trip the ``metrics`` op's
``recent`` reply uses."""

import json

import pytest

from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace
from repro.obs.recorder import FlightRecorder, events_from_wire
from repro.obs.registry import registry
from repro.obs.trace import TraceSink
from repro.obs.validate import validate_file


@pytest.fixture(autouse=True)
def clean_state():
    yield
    obs_recorder.uninstall()
    obs_trace.set_sink(None)


class TestRing:
    def test_bounded_at_capacity_with_eviction_counts(self):
        before = registry().counter("obs.recorder.evicted").value
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.instant(f"e{i}", float(i), "p", "t")
        assert len(rec) == 8
        assert rec.evicted == 12
        assert registry().counter("obs.recorder.evicted").value - before == 12
        names = [e.name for e in rec.events()]
        assert names == [f"e{i}" for i in range(12, 20)]  # oldest first

    def test_events_limit_returns_newest(self):
        rec = FlightRecorder(capacity=16)
        for i in range(10):
            rec.instant(f"e{i}", float(i), "p", "t")
        assert [e.name for e in rec.events(3)] == ["e7", "e8", "e9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_all_event_phases_recorded(self):
        rec = FlightRecorder(capacity=32)
        rec.instant("i", 0.0, "p", "t", k=1)
        rec.begin("b", 1.0, "p", "t")
        rec.end("b", 2.0, "p", "t")
        rec.complete("x", 3.0, 0.5, "p", "t")
        rec.counter("c", 4.0, "p", "t", depth=2)
        rec.allocation(5.0, {"MM": (0, 14)})
        assert [e.ph for e in rec.events()] == ["i", "B", "E", "X", "C", "i"]

    def test_clear(self):
        rec = FlightRecorder(capacity=4)
        rec.instant("e", 0.0, "p", "t")
        rec.clear()
        assert len(rec) == 0


class TestForwarding:
    def test_events_land_in_ring_and_forward_sink(self):
        sink = TraceSink()
        rec = FlightRecorder(capacity=4, forward=sink)
        rec.instant("e", 1.0, "p", "t", k=2)
        rec.complete("x", 2.0, 0.25, "p", "t")
        assert len(rec) == 2
        assert [e.name for e in sink.events] == ["e", "x"]

    def test_disabled_forward_sink_is_dropped(self):
        rec = FlightRecorder(capacity=4, forward=obs_trace.NullSink())
        assert rec.forward is None

    def test_install_makes_recorder_the_process_sink(self):
        rec = obs_recorder.install(capacity=16)
        assert obs_trace.ENABLED
        obs_trace.instant("hello", 0.5, "pid", "tid")
        assert [e.name for e in rec.events()] == ["hello"]
        assert obs_recorder.get_recorder() is rec

    def test_uninstall_restores_forward_sink(self):
        sink = TraceSink()
        obs_trace.set_sink(sink)
        obs_recorder.install(capacity=16, forward=sink)
        obs_recorder.uninstall()
        assert obs_recorder.get_recorder() is None
        assert obs_trace.ENABLED  # the full-capture sink is back
        obs_trace.instant("after", 1.0, "p", "t")
        assert [e.name for e in sink.events] == ["after"]


class TestDumpAndWire:
    def test_dump_writes_valid_perfetto_json(self, tmp_path):
        rec = FlightRecorder(capacity=8, metadata={"who": "test"})
        for i in range(5):
            rec.complete(f"k{i}", float(i), 0.5, "tenants", "MM")
        out = tmp_path / "flight.json"
        n = rec.dump(str(out), reason="unit-test")
        assert n == 5
        assert validate_file(str(out)) == []
        body = json.loads(out.read_text())
        md = body["metadata"]
        assert md["flight_recorder"] is True
        assert md["ring_capacity"] == 8
        assert md["reason"] == "unit-test"
        assert md["who"] == "test"

    def test_dump_recent_without_recorder_is_a_noop(self, tmp_path):
        assert obs_recorder.dump_recent(str(tmp_path / "x.json")) == 0
        assert not (tmp_path / "x.json").exists()

    def test_serialize_round_trips_through_wire(self):
        rec = FlightRecorder(capacity=8)
        rec.instant("e", 1.0, "p", "t", k=3)
        rec.complete("x", 2.0, 0.5, "p", "t")
        wired = json.loads(json.dumps(rec.serialize()))
        sink = events_from_wire(wired, metadata={"src": "sock"})
        assert [(e.name, e.ph, e.ts) for e in sink.events] == [
            ("e", "i", 1.0), ("x", "X", 2.0),
        ]
        assert sink.events[0].args == {"k": 3}
        assert sink.events[1].dur == 0.5

    def test_snapshot_sink_carries_eviction_count_as_dropped(self):
        rec = FlightRecorder(capacity=2)
        for i in range(5):
            rec.instant(f"e{i}", float(i), "p", "t")
        sink = rec.snapshot_sink()
        assert sink.dropped == 3
        assert len(sink.events) == 2
