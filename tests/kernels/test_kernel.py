"""Tests for grid geometry and KernelSpec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.device import KernelWork
from repro.kernels.kernel import GridDim, KernelSpec
from repro.kernels import blackscholes, sgemm


class TestGridDim:
    def test_1d_grid(self):
        g = GridDim(100)
        assert g.num_blocks == 100
        assert not g.is_2d

    def test_2d_grid(self):
        g = GridDim(10, 20)
        assert g.num_blocks == 200
        assert g.is_2d

    def test_validation(self):
        with pytest.raises(ValueError):
            GridDim(0)
        with pytest.raises(ValueError):
            GridDim(1, 0)

    def test_linear_index_row_major(self):
        g = GridDim(4, 3)
        assert g.linear_index(0, 0) == 0
        assert g.linear_index(3, 0) == 3
        assert g.linear_index(0, 1) == 4
        assert g.linear_index(3, 2) == 11

    def test_coords_inverse(self):
        g = GridDim(4, 3)
        assert g.coords(0) == (0, 0)
        assert g.coords(11) == (3, 2)

    def test_out_of_range(self):
        g = GridDim(4, 3)
        with pytest.raises(ValueError):
            g.linear_index(4, 0)
        with pytest.raises(ValueError):
            g.coords(12)

    @given(
        x=st.integers(min_value=1, max_value=200),
        y=st.integers(min_value=1, max_value=50),
        data=st.data(),
    )
    def test_linearization_roundtrip(self, x, y, data):
        g = GridDim(x, y)
        linear = data.draw(st.integers(min_value=0, max_value=g.num_blocks - 1))
        bx, by = g.coords(linear)
        assert g.linear_index(bx, by) == linear

    @given(x=st.integers(min_value=1, max_value=100), y=st.integers(min_value=1, max_value=30))
    def test_linearization_is_bijection(self, x, y):
        g = GridDim(x, y)
        seen = {g.linear_index(bx, by) for by in range(y) for bx in range(x)}
        assert seen == set(range(g.num_blocks))


class TestKernelSpec:
    def test_work_conversion(self):
        spec = blackscholes()
        work = spec.work()
        assert isinstance(work, KernelWork)
        assert work.num_blocks == spec.grid.num_blocks
        assert work.flops_per_block == spec.flops_per_block

    def test_2d_spec_flattens_block_count(self):
        spec = sgemm(tiles=8)
        assert spec.grid.is_2d
        assert spec.work().num_blocks == 64

    def test_scaled(self):
        spec = blackscholes(num_blocks=1000)
        bigger = spec.scaled(2.0)
        assert bigger.grid.x == 2000
        assert bigger.name == spec.name
        with pytest.raises(ValueError):
            spec.scaled(0)

    def test_totals(self):
        spec = blackscholes(num_blocks=10)
        assert spec.total_flops == pytest.approx(10 * spec.flops_per_block)
        assert spec.total_bytes == pytest.approx(10 * spec.bytes_per_block)
