"""Calibration tests: solo CUDA profiles must reproduce Table II.

These are the anchor tests of the reproduction: if they drift, every
downstream experiment's absolute numbers drift with them.
"""

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.device import ExecutionMode, SimulatedGPU
from repro.kernels import BENCHMARKS, by_name
from repro.sim import Environment

#: Paper Table II: (GFLOP/s, memory bandwidth GB/s) under solo CUDA.
TABLE_II = {
    "BS": (161.3, 401.49),
    "GS": (19.6, 340.9),
    "MM": (1525.0, 403.5),
    "RG": (4.2, 71.6),
    "TR": (0.0, 568.6),
}


def run_solo(name, mode=ExecutionMode.HARDWARE, task_size=10):
    env = Environment()
    gpu = SimulatedGPU(env, TITAN_XP, CostModel())
    spec = by_name(name)
    inject = 0.03 if mode is ExecutionMode.SLATE else 0.0
    handle = gpu.launch(spec.work(), mode=mode, task_size=task_size, inject_frac=inject)
    return env.run(until=handle.done)


class TestTableIIProfiles:
    @pytest.mark.parametrize("name", list(TABLE_II))
    def test_gflops_matches_paper(self, name):
        gf_target, _ = TABLE_II[name]
        counters = run_solo(name)
        if gf_target == 0.0:
            assert counters.gflops == 0.0
        else:
            assert counters.gflops == pytest.approx(gf_target, rel=0.10)

    @pytest.mark.parametrize("name", list(TABLE_II))
    def test_bandwidth_matches_paper(self, name):
        _, bw_target = TABLE_II[name]
        counters = run_solo(name)
        assert counters.l2_throughput / 1e9 == pytest.approx(bw_target, rel=0.10)

    def test_registry_covers_all_five(self):
        assert set(BENCHMARKS) == set(TABLE_II)


class TestSoloSlateBehaviour:
    """Paper §V-B: per-kernel Slate vs CUDA solo kernel time."""

    def test_gaussian_gains_about_28_percent(self):
        cuda = run_solo("GS", ExecutionMode.HARDWARE)
        slate = run_solo("GS", ExecutionMode.SLATE)
        speedup = cuda.elapsed / slate.elapsed
        assert 1.15 <= speedup <= 1.45  # paper: +28%

    def test_gaussian_throttle_disappears_under_slate(self):
        cuda = run_solo("GS", ExecutionMode.HARDWARE)
        slate = run_solo("GS", ExecutionMode.SLATE)
        assert cuda.mem_throttle_fraction > 0.08  # paper: 26.1%
        assert slate.mem_throttle_fraction == pytest.approx(0.0, abs=1e-6)

    def test_gaussian_bandwidth_rises_under_slate(self):
        cuda = run_solo("GS", ExecutionMode.HARDWARE)
        slate = run_solo("GS", ExecutionMode.SLATE)
        gain = slate.l2_throughput / cuda.l2_throughput
        assert 1.2 <= gain <= 1.5  # paper: +38%

    def test_blackscholes_loses_at_default_task_size(self):
        """Direction matches the paper's -5%; our magnitude is softer
        because the simulated grid is finer-grained than the real BS run
        (the straggler tail shrinks with wave count)."""
        cuda = run_solo("BS", ExecutionMode.HARDWARE)
        slate = run_solo("BS", ExecutionMode.SLATE, task_size=10)
        ratio = slate.elapsed / cuda.elapsed
        assert 1.002 <= ratio <= 1.10

    def test_blackscholes_wins_at_task_size_one(self):
        cuda = run_solo("BS", ExecutionMode.HARDWARE)
        slate = run_solo("BS", ExecutionMode.SLATE, task_size=1)
        assert slate.elapsed < cuda.elapsed  # paper: +2%

    @pytest.mark.parametrize("name", ["MM", "RG", "TR"])
    def test_other_kernels_no_worse_than_cuda(self, name):
        """Worst case: Slate matches CUDA (paper Fig. 6)."""
        cuda = run_solo(name, ExecutionMode.HARDWARE)
        slate = run_solo(name, ExecutionMode.SLATE)
        assert slate.elapsed <= cuda.elapsed * 1.02


class TestFig5TaskSizeSweep:
    def test_gs_kernel_time_roughly_halves_at_task_10(self):
        t1 = run_solo("GS", ExecutionMode.SLATE, task_size=1).elapsed
        t10 = run_solo("GS", ExecutionMode.SLATE, task_size=10).elapsed
        assert 1.6 <= t1 / t10 <= 2.8  # paper: "almost halves"

    def test_bs_prefers_task_size_one(self):
        t1 = run_solo("BS", ExecutionMode.SLATE, task_size=1).elapsed
        t10 = run_solo("BS", ExecutionMode.SLATE, task_size=10).elapsed
        assert t10 > t1  # paper: size 10 worse than size 1 for BS

    def test_gs_improvement_monotone_then_flat(self):
        times = {
            s: run_solo("GS", ExecutionMode.SLATE, task_size=s).elapsed
            for s in (1, 2, 5, 10)
        }
        assert times[1] > times[2] > times[5] > times[10]
