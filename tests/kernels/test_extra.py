"""Tests for the extended workload set (HS, PF, KM)."""

import pytest

from repro.kernels import by_name, hotspot, kmeans, pathfinder
from repro.slate.classify import IntensityClass as C
from repro.slate.policy import DEFAULT_POLICY
from repro.slate.profiler import offline_profile
from repro.workloads.harness import app_for, run_pair, run_solo
from repro.workloads.app import AppSpec


class TestClasses:
    @pytest.mark.parametrize(
        "factory,expected",
        [(hotspot, C.M_M), (pathfinder, C.L_C), (kmeans, C.M_C)],
    )
    def test_intended_intensity_class(self, factory, expected):
        profile = offline_profile(factory())
        assert profile.intensity is expected

    def test_km_fills_the_empty_class(self):
        """The paper's suite has no M_C member; KM provides one."""
        profile = offline_profile(kmeans())
        assert profile.intensity is C.M_C
        # And the policy pairs it with low-compute and H_M partners.
        assert DEFAULT_POLICY.should_corun(C.M_C, C.L_C)
        assert DEFAULT_POLICY.should_corun(C.M_C, C.H_M)

    def test_registry_resolution(self):
        for name in ("HS", "PF", "KM"):
            assert by_name(name).name == name


class TestBehaviour:
    def test_hotspot_gains_from_in_order_execution(self):
        """HS is order-sensitive like GS: Slate's scheduling helps solo."""
        from repro.gpu.device import ExecutionMode, SimulatedGPU
        from repro.config import TITAN_XP, CostModel
        from repro.sim import Environment

        spec = hotspot()
        times = {}
        for mode, kwargs in (
            (ExecutionMode.HARDWARE, {}),
            (ExecutionMode.SLATE, {"task_size": 10, "inject_frac": 0.03}),
        ):
            env = Environment()
            gpu = SimulatedGPU(env, TITAN_XP, CostModel())
            times[mode] = env.run(
                until=gpu.launch(spec.work(), mode=mode, **kwargs).done
            ).elapsed
        assert times[ExecutionMode.HARDWARE] > 1.10 * times[ExecutionMode.SLATE]

    def test_pathfinder_rides_with_hotspot(self):
        """PF (L_C) co-runs with HS (M_M) under the Table I policy."""
        _, runtime = run_pair(
            "Slate",
            AppSpec(name="HS", kernel=hotspot(), reps=4),
            AppSpec(name="PF", kernel=pathfinder(), reps=4),
        )
        assert runtime.scheduler.corun_launches >= 1

    def test_km_tr_pair_coruns(self):
        """M_C x H_M is a corun cell: KM pairs with Transpose."""
        _, runtime = run_pair(
            "Slate",
            AppSpec(name="KM", kernel=kmeans(), reps=4),
            app_for("TR", reps=4),
        )
        assert runtime.scheduler.corun_launches >= 1

    def test_all_extras_run_solo_under_every_runtime(self):
        for bench in ("HS", "PF", "KM"):
            for runtime in ("CUDA", "MPS", "Slate"):
                result, _ = run_solo(runtime, app_for(bench, reps=2))
                assert result.launches == 2
                assert result.kernel_exec_time > 0
