"""Registry and synthetic kernel tests."""

import pytest

from repro.config import TITAN_XP, CostModel
from repro.gpu.device import ExecutionMode, SimulatedGPU
from repro.kernels import BENCHMARKS, SHORT_NAMES, by_name, stream, synthetic
from repro.sim import Environment


class TestRegistry:
    def test_short_names_order(self):
        assert SHORT_NAMES == ("BS", "GS", "MM", "RG", "TR")

    def test_by_name_case_insensitive(self):
        assert by_name("bs").name == "BS"
        assert by_name("TR").name == "TR"

    def test_stream_resolvable(self):
        assert by_name("stream").name == "STREAM"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            by_name("nope")

    def test_factories_produce_fresh_specs(self):
        a, b = BENCHMARKS["BS"](), BENCHMARKS["BS"]()
        assert a == b
        assert a is not b


class TestSynthetic:
    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic(compute_fraction=1.5, memory_fraction=0.1)
        with pytest.raises(ValueError):
            synthetic(compute_fraction=0.1, memory_fraction=-0.1)
        with pytest.raises(ValueError):
            synthetic(0.1, 0.1, block_time=0)

    def test_name_default(self):
        spec = synthetic(0.25, 0.50)
        assert "c=0.25" in spec.name and "m=0.50" in spec.name

    @pytest.mark.parametrize("cfrac,mfrac", [(0.02, 0.05), (0.10, 0.40), (0.01, 0.75)])
    def test_solo_rates_match_requested_fractions(self, cfrac, mfrac):
        """A synthetic kernel achieves (roughly) the rates it was asked for."""
        spec = synthetic(cfrac, mfrac, num_blocks=9600)
        env = Environment()
        gpu = SimulatedGPU(env, TITAN_XP, CostModel())
        counters = env.run(until=gpu.launch(spec.work()).done)
        assert counters.gflops * 1e9 == pytest.approx(
            cfrac * TITAN_XP.device_flops, rel=0.15
        )
        assert counters.l2_throughput == pytest.approx(
            mfrac * TITAN_XP.dram_bandwidth, rel=0.15
        )

    def test_oversubscribed_memory_fraction_throttles(self):
        spec = synthetic(0.01, 1.2, num_blocks=9600)
        env = Environment()
        gpu = SimulatedGPU(env, TITAN_XP, CostModel())
        counters = env.run(until=gpu.launch(spec.work()).done)
        assert counters.l2_throughput <= 1.01 * TITAN_XP.dram_bandwidth
        assert counters.mem_throttle_fraction > 0.1


class TestStreamFig1:
    def test_stream_validation(self):
        with pytest.raises(ValueError):
            stream(total_bytes=0)

    def test_stream_saturates_at_nine_sms(self):
        """The Figure 1 result, end to end through the kernel model."""
        bw = {}
        for n in (1, 2, 4, 6, 8, 9, 10, 15, 30):
            env = Environment()
            gpu = SimulatedGPU(env, TITAN_XP, CostModel())
            h = gpu.launch(stream(total_bytes=2 * 1024**3).work(), sm_ids=range(n))
            bw[n] = env.run(until=h.done).l2_throughput
        # Rising region approximately linear.
        assert bw[2] == pytest.approx(2 * bw[1], rel=0.05)
        assert bw[8] == pytest.approx(8 * bw[1], rel=0.06)
        # Knee at 9: within a few percent of the 30-SM plateau.
        assert bw[9] > 0.95 * bw[30]
        assert bw[10] == pytest.approx(bw[30], rel=0.03)
        # Plateau near device peak.
        assert bw[30] > 0.93 * TITAN_XP.dram_bandwidth
