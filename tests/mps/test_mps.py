"""MPS baseline tests: context funneling, relay cost, leftover policy."""

import pytest

from repro.config import CostModel
from repro.cuda import VanillaCudaRuntime
from repro.kernels import synthetic
from repro.mps import MpsRuntime
from repro.sim import Environment


def small_kernel(name="K", blocks=960, block_time=10e-6):
    return synthetic(0.02, 0.05, name=name, num_blocks=blocks, block_time=block_time)


class TestContextFunneling:
    def test_all_clients_share_server_context(self):
        env = Environment()
        rt = MpsRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env):
            yield from s1.malloc(4096)
            yield from s2.malloc(8192)

        env.run(until=env.process(app(env)))
        assert rt.server_context.allocated_bytes == 4096 + 8192

    def test_close_frees_only_own_pointers(self):
        env = Environment()
        rt = MpsRuntime(env)
        s1, s2 = rt.create_session("a"), rt.create_session("b")

        def app(env):
            yield from s1.malloc(4096)
            yield from s2.malloc(8192)
            s1.close()

        env.run(until=env.process(app(env)))
        assert rt.server_context.allocated_bytes == 8192

    def test_relay_cost_charged_per_call(self):
        costs = CostModel(mps_relay_overhead=1e-3)
        env = Environment()
        rt = MpsRuntime(env, costs=costs)
        s = rt.create_session("a")

        def app(env):
            yield from s.malloc(4096)
            yield from s.malloc(4096)

        env.run(until=env.process(app(env)))
        assert rt.relayed_calls == 2
        assert env.now == pytest.approx(2e-3)


class TestLeftoverPolicy:
    def run_pair(self, runtime_cls, spec_a, spec_b):
        env = Environment()
        rt = runtime_cls(env)
        results = {}

        def app(env, name, spec):
            session = rt.create_session(name)
            ticket = yield from session.launch(spec)
            yield from session.synchronize()
            results[name] = (ticket.started_at, env.now)

        pa = env.process(app(env, "a", spec_a))
        pb = env.process(app(env, "b", spec_b))
        env.run(until=pa & pb)
        return results, rt

    def test_second_kernel_admitted_at_tail(self):
        # 5000 blocks over 480 slots: a ragged final wave long enough to
        # observe the leftover overlap window.
        spec = small_kernel(blocks=5000, block_time=50e-6)
        results, rt = self.run_pair(MpsRuntime, spec, spec)
        (a0, a1), (b0, b1) = results["a"], results["b"]
        first0, first1 = min((a0, a1), (b0, b1)), max((a0, a1), (b0, b1))
        # The second kernel starts before the first finishes (tail overlap)
        # but after most of the first has executed.
        assert first1[0] < first0[1]
        assert first1[0] > first0[1] - 0.25 * (first0[1] - first0[0])
        assert rt.tail_overlaps >= 1

    def test_mps_beats_cuda_via_no_context_switches(self):
        """For alternating kernel loops MPS avoids per-kernel switch costs."""
        costs = CostModel(context_switch_overhead=2e-3)

        def run(runtime_cls):
            env = Environment()
            rt = runtime_cls(env, costs=costs)
            procs = []

            def app(env, name):
                session = rt.create_session(name)
                for _ in range(5):
                    yield from session.launch(small_kernel(name))
                    yield from session.synchronize()

            for name in ("a", "b"):
                procs.append(env.process(app(env, name)))
            env.run(until=procs[0] & procs[1])
            return env.now

        t_mps = run(MpsRuntime)
        t_cuda = run(VanillaCudaRuntime)
        assert t_mps < t_cuda

    def test_mps_solo_slightly_slower_than_cuda(self):
        """Fig. 6: MPS's relay makes solo application time a bit worse."""

        def run(runtime_cls):
            env = Environment()
            rt = runtime_cls(env)
            session = rt.create_session("solo")

            def app(env):
                yield from session.malloc(1 << 20)
                yield from session.memcpy_h2d(1 << 20)
                for _ in range(10):
                    yield from session.launch(small_kernel(block_time=200e-6))
                    yield from session.synchronize()
                yield from session.memcpy_d2h(1 << 20)

            env.run(until=env.process(app(env)))
            return env.now

        t_mps = run(MpsRuntime)
        t_cuda = run(VanillaCudaRuntime)
        assert t_mps > t_cuda
        assert t_mps < t_cuda * 1.25  # "slightly larger"


class TestLeftoverSmallKernels:
    """Real MPS co-runs kernels whose grids underfill the device."""

    def test_small_grids_corun_under_mps(self):
        env = Environment()
        rt = MpsRuntime(env)
        # 240 blocks on a 480-slot device: half the slots are leftover.
        spec = small_kernel(blocks=240, block_time=200e-6)
        spans = {}

        def app(env, name):
            session = rt.create_session(name)
            ticket = yield from session.launch(spec)
            yield from session.synchronize()
            spans[name] = (ticket.started_at, env.now)

        pa = env.process(app(env, "a"))
        pb = env.process(app(env, "b"))
        env.run(until=pa & pb)
        (a0, a1), (b0, b1) = spans["a"], spans["b"]
        assert max(a0, b0) < min(a1, b1)  # overlapping windows
        assert rt.leftover_coruns >= 1

    def test_device_filling_grids_still_serialize(self):
        env = Environment()
        rt = MpsRuntime(env)
        spec = small_kernel(blocks=4800, block_time=50e-6)  # 10 full waves
        spans = {}

        def app(env, name):
            session = rt.create_session(name)
            ticket = yield from session.launch(spec)
            yield from session.synchronize()
            spans[name] = (ticket.started_at, env.now)

        pa = env.process(app(env, "a"))
        pb = env.process(app(env, "b"))
        env.run(until=pa & pb)
        (a0, a1), (b0, b1) = spans["a"], spans["b"]
        first_end = min(a1, b1)
        second_start = max(a0, b0)
        # The second kernel starts only in the first one's drain tail.
        duration = first_end - min(a0, b0)
        assert second_start > first_end - 0.25 * duration
