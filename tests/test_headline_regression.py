"""Regression pins for the reproduction's headline numbers.

These freeze the calibrated model's key outputs tightly (a few percent),
so any drift in the cost model, kernels, or scheduler shows up here first
with a clear "which headline moved" signal. Looser *shape* tests live in
``tests/experiments``; this file is the canary.
"""

import pytest

from repro.workloads.harness import app_for, run_pair, run_solo
from repro.metrics.antt import antt

#: Pinned measurements (see EXPERIMENTS.md).  Tolerance is relative.
PINS = {
    "bs_rg_gain_vs_mps": (0.274, 0.03),
    "gs_gs_gain_vs_mps": (0.211, 0.03),
    "mm_bs_gain_vs_mps": (-0.015, 0.02),  # the paper's exception stays negative-small
    "gs_solo_slate_speedup": (1.225, 0.05),
}


def pair_gain(a: str, b: str) -> float:
    na, nb = (a, b) if a != b else (a, f"{b}#2")
    solo = {
        na: run_solo("CUDA", app_for(a, name=na))[0].app_time,
        nb: run_solo("CUDA", app_for(b, name=nb))[0].app_time,
    }
    values = {}
    for runtime in ("MPS", "Slate"):
        results, _ = run_pair(runtime, app_for(a, name=na), app_for(b, name=nb))
        values[runtime] = antt(
            {na: results[na].app_time, nb: results[nb].app_time}, solo
        )
    return (values["MPS"] - values["Slate"]) / values["MPS"]


class TestHeadlinePins:
    def test_bs_rg_gain(self):
        target, tol = PINS["bs_rg_gain_vs_mps"]
        assert pair_gain("BS", "RG") == pytest.approx(target, abs=tol)

    def test_gs_gs_gain(self):
        target, tol = PINS["gs_gs_gain_vs_mps"]
        assert pair_gain("GS", "GS") == pytest.approx(target, abs=tol)

    def test_mm_bs_stays_the_small_exception(self):
        target, tol = PINS["mm_bs_gain_vs_mps"]
        assert pair_gain("MM", "BS") == pytest.approx(target, abs=tol)

    def test_gs_solo_slate_speedup(self):
        target, tol = PINS["gs_solo_slate_speedup"]
        cuda, _ = run_solo("CUDA", app_for("GS"))
        slate, _ = run_solo("Slate", app_for("GS"))
        assert cuda.app_time / slate.app_time == pytest.approx(target, rel=tol)

    def test_reproduction_is_bit_deterministic(self):
        """The entire scenario pipeline is seed-free and deterministic."""
        assert pair_gain("BS", "RG") == pair_gain("BS", "RG")
