#!/usr/bin/env python
"""Quickstart: share a GPU between two applications with Slate.

Two host processes — a memory-saturating BlackScholes pricer and a
low-intensity quasirandom generator — run through the Slate daemon, which
recognizes them as complementary and co-schedules them on disjoint SM
partitions.  Compare the total time with MPS-style consecutive execution.

Run:  python examples/quickstart.py
"""

from repro.kernels import blackscholes, quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime
from repro.workloads import app_for, run_pair, run_solo


def drive_pair(runtime_name: str) -> dict[str, float]:
    """Run the BS and RG applications together under ``runtime_name``."""
    results, runtime = run_pair(runtime_name, app_for("BS"), app_for("RG"))
    if runtime_name == "Slate":
        sched = runtime.scheduler
        print(
            f"  Slate decisions: {sched.corun_launches} corun launches, "
            f"{sched.solo_launches} solo, {sched.resizes} dynamic resizes"
        )
    return {name: res.app_time for name, res in results.items()}


def main() -> None:
    print("Solo baselines (vanilla CUDA):")
    solo = {}
    for bench in ("BS", "RG"):
        result, _ = run_solo("CUDA", app_for(bench))
        solo[bench] = result.app_time
        print(f"  {bench}: {result.app_time * 1e3:7.1f} ms")

    print("\nRunning BS + RG concurrently:")
    for runtime in ("CUDA", "MPS", "Slate"):
        times = drive_pair(runtime)
        slowdowns = [times[b] / solo[b] for b in times]
        antt = sum(slowdowns) / len(slowdowns)
        print(
            f"  {runtime:5}: BS {times['BS'] * 1e3:7.1f} ms, "
            f"RG {times['RG'] * 1e3:7.1f} ms   ANTT {antt:.3f} (lower = better)"
        )

    print("\nWhy it works: BlackScholes saturates DRAM bandwidth with ~12 of")
    print("the 30 SMs (Figure 1's insight), so Slate gives the remaining SMs")
    print("to the quasirandom generator, which barely uses memory at all.")


if __name__ == "__main__":
    main()
