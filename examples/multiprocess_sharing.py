#!/usr/bin/env python
"""Run a 4-process mixed workload and compare the three schedulers.

Goes beyond the paper's pairings: four applications (two memory-heavy, two
light) contend for one GPU.  Slate's scheduler co-runs complementary
subsets as they arrive and resizes on every completion; CUDA time-slices;
MPS funnels contexts but only overlaps drain tails.

Run:  python examples/multiprocess_sharing.py
"""

from repro.metrics import antt, format_table, stp
from repro.sim import Environment
from repro.workloads import app_for, make_runtime, run_application, run_solo

WORKLOAD = [
    ("pricing", "BS", 0.0),     # (app name, benchmark, arrival time s)
    ("montecarlo", "RG", 0.002),
    ("solver", "GS", 0.004),
    ("sequences", "RG", 0.006),
]


def run_mix(runtime_name: str) -> dict[str, float]:
    env = Environment()
    runtime = make_runtime(runtime_name, env)
    apps = [(name, app_for(bench, name=name, reps=10), at) for name, bench, at in WORKLOAD]
    if runtime_name == "Slate":
        runtime.preload_profiles([a.kernel for _, a, _ in apps])

    procs = []

    def delayed(env, app, at):
        yield env.timeout(at)
        session = runtime.create_session(app.name)
        result = yield from run_application(env, session, app, runtime.costs)
        return result

    for _, app, at in apps:
        procs.append(env.process(delayed(env, app, at)))
    env.run(until=env.all_of(procs))
    return {p.value.name: p.value.app_time for p in procs}


def main() -> None:
    solo = {}
    for name, bench, _ in WORKLOAD:
        result, _ = run_solo("CUDA", app_for(bench, name=name, reps=10))
        solo[name] = result.app_time

    rows = []
    for runtime in ("CUDA", "MPS", "Slate"):
        times = run_mix(runtime)
        rows.append(
            (
                runtime,
                *(f"{times[n] * 1e3:.1f}" for n in times),
                f"{antt(times, solo):.3f}",
                f"{stp(times, solo):.2f}",
            )
        )
    headers = ["runtime", *(f"{n} (ms)" for n, _, _ in WORKLOAD), "ANTT", "STP"]
    print(format_table(headers, rows, title="4-process mixed workload"))
    print("\nANTT: average slowdown vs running alone (lower is better).")
    print("STP:  aggregate throughput in 'full-speed app' units (higher is better, max 4).")


if __name__ == "__main__":
    main()
