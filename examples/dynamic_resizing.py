#!/usr/bin/env python
"""Watch Slate's dynamic kernel resizing in action.

A long-running Gaussian-elimination kernel owns the whole device.  A
quasirandom generator arrives mid-flight: Slate signals *retreat*, the
persistent workers drain their current tasks, and the kernel relaunches on
a reduced SM range while the newcomer takes the complement.  When the
newcomer finishes, the survivor grows back to all 30 SMs — resuming from
``slateIdx`` both times, with no lost or repeated blocks.

Run:  python examples/dynamic_resizing.py
"""

from repro.kernels import gaussian, quasirandom
from repro.sim import Environment
from repro.slate import SlateRuntime


def main() -> None:
    env = Environment()
    runtime = SlateRuntime(env)
    gs = gaussian(num_blocks=6_000_000)  # long-running
    rg = quasirandom(num_blocks=9600)  # short visitor
    runtime.preload_profiles([gs, rg])

    timeline: list[tuple[float, str]] = []

    def snapshot(label: str) -> None:
        sms = {k: len(v) for k, v in runtime.scheduler.running_sms().items()}
        timeline.append((env.now, f"{label:28} SM allocation: {sms}"))

    def gs_app(env):
        session = runtime.create_session("gs-app")
        ticket = yield from session.launch(gs)
        snapshot("GS launched solo")
        yield from session.synchronize()
        snapshot("GS finished")
        session.close()
        return ticket

    def rg_app(env):
        session = runtime.create_session("rg-app")
        # Arrive after GS has been running a while.
        yield env.timeout(1.5e-3)
        ticket = yield from session.launch(rg)
        snapshot("RG arrived -> GS shrinks")
        yield from session.synchronize()
        snapshot("RG finished")
        # Give the grow-grace a moment, then observe GS reclaiming the GPU.
        yield env.timeout(runtime.costs.grow_grace + 1e-4)
        snapshot("grace elapsed -> GS grows")
        session.close()
        return ticket

    p_gs = env.process(gs_app(env))
    p_rg = env.process(rg_app(env))
    env.run(until=p_gs & p_rg)

    print("Timeline (simulated seconds):")
    for t, line in timeline:
        print(f"  t={t * 1e3:8.3f} ms  {line}")

    gs_counters = p_gs.value.counters
    print(
        f"\nGS executed {gs_counters.blocks_executed:,.0f} of "
        f"{gs.grid.num_blocks:,} blocks across {gs_counters.resizes} resizes "
        "- progress carried over exactly via slateIdx."
    )
    print(f"Scheduler resizes: {runtime.scheduler.resizes} (shrink + grow)")


if __name__ == "__main__":
    main()
