#!/usr/bin/env python
"""Workload-aware placement across a 2-GPU node (extension).

Four tenants — two memory-saturating (BS, GS) and two light (RG) — arrive
at a node with two Titan Xps. Class-aware placement sends the second
memory hog to the other device and pairs each hog with a light partner,
so *both* devices co-run complementary kernels. Compare against
round-robin and least-loaded placement.

Run:  python examples/multi_gpu_cluster.py
"""

from repro.kernels import blackscholes, gaussian, quasirandom
from repro.metrics import format_table
from repro.sim import Environment
from repro.slate.cluster import SlateCluster
from repro.workloads.app import AppSpec, run_application

# Arrival order matters: with BS, RG, GS, RG a round-robin placer puts the
# two memory-saturating tenants (BS, GS) on the SAME device.
APPS = [
    AppSpec(name="pricing(BS)", kernel=blackscholes(), reps=6),
    AppSpec(name="mc-1(RG)", kernel=quasirandom(), reps=6),
    AppSpec(name="solver(GS)", kernel=gaussian(), reps=6),
    AppSpec(name="mc-2(RG)", kernel=quasirandom(num_blocks=48_000), reps=6),
]


def run(placement: str):
    env = Environment()
    cluster = SlateCluster(env, num_devices=2, placement=placement)
    cluster.preload_profiles([a.kernel for a in APPS])
    procs = []
    for app in APPS:
        session = cluster.create_session(app.name, spec_hint=app.kernel)
        procs.append(env.process(run_application(env, session, app, cluster.runtime(0).costs)))
    env.run(until=env.all_of(procs))
    results = {p.value.name: p.value for p in procs}
    makespan = max(r.end for r in results.values())
    coruns = sum(cluster.runtime(i).scheduler.corun_launches for i in range(2))
    return results, cluster, makespan, coruns


def main() -> None:
    rows = []
    for placement in ("round-robin", "least-loaded", "class-aware"):
        results, cluster, makespan, coruns = run(placement)
        groups: dict[int, list[str]] = {0: [], 1: []}
        for name, dev in cluster.placements.items():
            groups[dev].append(name)
        rows.append(
            (
                placement,
                makespan * 1e3,
                coruns,
                " + ".join(sorted(groups[0])),
                " + ".join(sorted(groups[1])),
            )
        )
    print(
        format_table(
            ["placement", "makespan (ms)", "coruns", "GPU 0 tenants", "GPU 1 tenants"],
            rows,
            title="4 tenants on a 2-GPU node",
        )
    )
    print("\nClass-aware placement separates the two memory-saturating tenants")
    print("and pairs each with a light quasirandom generator, so both devices")
    print("spend the whole run co-executing complementary kernels.")


if __name__ == "__main__":
    main()
