#!/usr/bin/env python
"""QoS extension: a latency-critical tenant preempts a batch job.

A long Transpose batch job owns the GPU. A high-priority BlackScholes
request arrives; the two are both memory-intensive (Table I: no corun),
so without QoS the VIP waits for the whole batch kernel. With preemption
enabled, Slate's retreat mechanism drains the batch workers (progress held
in slateIdx), runs the VIP at near-solo latency, then resumes the batch —
no work lost.

Run:  python examples/priority_preemption.py
"""

from repro.kernels import blackscholes, transpose
from repro.metrics import format_table
from repro.sim import Environment
from repro.slate import SlateRuntime


def run(enable_preemption: bool):
    env = Environment()
    rt = SlateRuntime(env, enable_preemption=enable_preemption)
    batch_spec = transpose(num_blocks=3_360_000)  # ~10x normal length
    vip_spec = blackscholes()
    rt.preload_profiles([batch_spec, vip_spec])
    results = {}

    def batch(env):
        session = rt.create_session("batch")
        ticket = yield from session.launch(batch_spec)
        yield from session.synchronize()
        results["batch"] = ticket
        session.close()

    def vip(env):
        session = rt.create_session("vip")
        yield env.timeout(2e-3)  # arrives mid-batch
        t_request = env.now
        ticket = yield from session.launch(vip_spec, priority=10)
        yield from session.synchronize()
        results["vip_latency"] = env.now - t_request
        results["vip"] = ticket
        session.close()

    pb, pv = env.process(batch(env)), env.process(vip(env))
    env.run(until=pb & pv)
    return results, rt


def main() -> None:
    rows = []
    for mode, preempt in (("FIFO (no QoS)", False), ("priority preemption", True)):
        results, rt = run(preempt)
        rows.append(
            (
                mode,
                results["vip_latency"] * 1e3,
                results["batch"].counters.end_time * 1e3,
                rt.scheduler.preemptions,
                f"{results['batch'].counters.blocks_executed:,.0f}",
            )
        )
    print(
        format_table(
            [
                "scheduler",
                "VIP latency (ms)",
                "batch done (ms)",
                "preemptions",
                "batch blocks run",
            ],
            rows,
            title="Latency-critical tenant vs batch job",
        )
    )
    print("\nWith preemption the VIP's turnaround collapses to near-solo time;")
    print("the batch job pays only the retreat/resume cost and loses no work.")


if __name__ == "__main__":
    main()
