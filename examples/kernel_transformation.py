#!/usr/bin/env python
"""Transform a CUDA kernel the way the Slate daemon does.

Feeds a 2D tiled kernel through the scanner (the FLEX-scan analogue) and
the code injector, prints the transformed source (SM-guard prologue +
task-queue scheduling loop, built-in variables replaced), and then proves
semantic preservation by executing the transformed kernel on simulated
persistent workers across an adversarial resize schedule.

Run:  python examples/kernel_transformation.py
"""

from repro.kernels import GridDim
from repro.slate import GridTransform, inject, scan_kernels, simulate_workers

USER_SOURCE = """
__global__ void stencil2d(float* out, const float* in, int width, int height)
{
    const int col = blockIdx.x * blockDim.x + threadIdx.x;
    const int row = blockIdx.y * blockDim.y + threadIdx.y;
    if (row > 0 && row < height - 1 && col > 0 && col < width - 1) {
        out[row * width + col] = 0.25f * (
            in[(row - 1) * width + col] + in[(row + 1) * width + col] +
            in[row * width + col - 1] + in[row * width + col + 1]);
    }
    // gridDim.x tells the kernel its row pitch in blocks:
    if (col == 0 && row == 0) { out[0] = (float)gridDim.x; }
}
"""


def main() -> None:
    print("=== 1. Scan (FLEX) ===")
    kernels = scan_kernels(USER_SOURCE)
    kernel = kernels[0]
    print(f"found kernel {kernel.name!r}, builtins used: {kernel.builtins_used}")

    print("\n=== 2. Inject (Listings 1 + 2) ===")
    transformed = inject(kernel)
    print(transformed)

    print("=== 3. Semantics preserved across dynamic resizing ===")
    grid = GridDim(16, 12)  # a 16x12 block grid
    # Epochs: start with 7 workers, shrink to 3, grow to 11 (two retreats).
    schedule = [7, 3, 11]
    traces = simulate_workers(grid, task_size=10, worker_schedule=schedule)
    executed = [b for tr in traces for b in tr.blocks]
    expected = GridTransform(grid).enumerate_all()
    print(f"grid: {grid.x}x{grid.y} = {grid.num_blocks} blocks")
    print(f"worker schedule (resizes between epochs): {schedule}")
    print(f"blocks executed: {len(executed)}, unique: {len(set(executed))}")
    assert sorted(executed) == sorted(expected)
    print("every user block executed exactly once - semantics preserved.")

    per_epoch = {}
    for tr in traces:
        per_epoch.setdefault(tr.epoch, 0)
        per_epoch[tr.epoch] += len(tr.blocks)
    print(f"blocks per epoch (carried over via slateIdx): {per_epoch}")


if __name__ == "__main__":
    main()
