#!/usr/bin/env python
"""Replay a random multi-application arrival trace and visualize it.

Generates a Poisson arrival trace over the five benchmarks, replays it
under all three runtimes, and renders Slate's SM-allocation timeline —
watch kernels claim, share, and release SM ranges as tenants come and go.

Run:  python examples/trace_replay.py [seed]
"""

import sys

from repro.metrics import format_table
from repro.metrics.timeline import render_timeline
from repro.workloads.trace import generate_trace, replay_trace


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    trace = generate_trace(6, mean_interarrival=8e-3, reps=6, seed=seed)
    print("Arrival trace:")
    for entry in trace:
        print(f"  t={entry.arrival * 1e3:7.2f} ms  {entry.app.name}")

    rows = []
    slate_runtime = None
    for runtime_name in ("CUDA", "MPS", "Slate"):
        results, runtime = replay_trace(runtime_name, trace)
        makespan = max(r.end for r in results.values())
        mean_turnaround = sum(
            r.end - e.arrival for e, r in zip(trace, (results[e.app.name] for e in trace))
        ) / len(trace)
        rows.append((runtime_name, makespan * 1e3, mean_turnaround * 1e3))
        if runtime_name == "Slate":
            slate_runtime = runtime
    print()
    print(format_table(["runtime", "makespan (ms)", "mean turnaround (ms)"], rows))

    print()
    sched = slate_runtime.scheduler
    print(
        f"Slate decisions: {sched.corun_launches} corun / {sched.solo_launches} solo "
        f"launches, {sched.resizes} resizes"
    )
    print()
    print(render_timeline(sched.allocation_log, coalesce_window=0.3e-3, max_rows=30))


if __name__ == "__main__":
    main()
