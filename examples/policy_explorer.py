#!/usr/bin/env python
"""Explore the workload classifier and corun/solo policy on your own mix.

Builds a few custom kernels with chosen compute/memory intensities,
profiles them offline (the daemon's first-run profiling path), shows the
intensity class each lands in, and prints the Table I decision plus the SM
partition Slate would choose for every pair.

Run:  python examples/policy_explorer.py
"""

from repro.kernels import synthetic
from repro.metrics import format_table
from repro.slate import DEFAULT_POLICY, choose_partition, offline_profile

MY_KERNELS = {
    # name: (compute fraction of peak, memory demand fraction, dram efficiency)
    "embedding-lookup": (0.002, 0.30, 1.0),
    "dense-gemm": (0.40, 0.15, 1.0),
    "stream-filter": (0.01, 1.25, 0.70),  # saturates DRAM at ~60% efficiency
    "histogram": (0.04, 0.10, 1.0),
}


def main() -> None:
    profiles = {}
    rows = []
    for name, (cfrac, mfrac, eff) in MY_KERNELS.items():
        spec = synthetic(
            cfrac, mfrac, name=name, num_blocks=9600, dram_efficiency=eff
        )
        profile = offline_profile(spec)
        profiles[name] = profile
        rows.append(
            (
                name,
                f"{profile.gflops:.1f}",
                f"{profile.mem_bw / 1e9:.1f}",
                f"{profile.throttle_fraction:.0%}",
                profile.intensity.value,
                profile.saturation_sms(),
            )
        )
    print(
        format_table(
            ["kernel", "GFLOP/s", "BW GB/s", "throttled", "class", "saturation SMs"],
            rows,
            title="Offline profiles (first-run profiling path)",
        )
    )

    print("\nPairwise decisions (Table I policy) and partitions:")
    names = list(profiles)
    pair_rows = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            pa, pb = profiles[a], profiles[b]
            decision = DEFAULT_POLICY.decision(pa.intensity, pb.intensity)
            if decision == "corun":
                partition, primary, _ = choose_partition(pa, pb)
                n1, n2 = partition.sizes
                detail = f"{primary.name} gets {n1} SMs, partner {n2}"
            else:
                detail = "consecutive execution"
            pair_rows.append((a, b, f"{pa.intensity.value} x {pb.intensity.value}", decision, detail))
    print(format_table(["kernel A", "kernel B", "classes", "decision", "plan"], pair_rows))


if __name__ == "__main__":
    main()
